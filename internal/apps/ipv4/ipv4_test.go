package ipv4

import (
	"testing"
	"testing/quick"

	"nba/internal/batch"
	"nba/internal/element"
	"nba/internal/packet"
	"nba/internal/rng"
)

func TestBasicLookup(t *testing.T) {
	table, err := NewTable([]Route{
		{Prefix: 0x0A000000, PLen: 8, NextHop: 1},  // 10/8
		{Prefix: 0x0A010000, PLen: 16, NextHop: 2}, // 10.1/16
		{Prefix: 0x0A010100, PLen: 24, NextHop: 3}, // 10.1.1/24
		{Prefix: 0x0A010180, PLen: 25, NextHop: 4}, // 10.1.1.128/25
		{Prefix: 0x0A0101FF, PLen: 32, NextHop: 5}, // 10.1.1.255/32
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint32
		want uint16
	}{
		{0x0A000001, 1},
		{0x0A010001, 2},
		{0x0A010101, 3},
		{0x0A010181, 4},
		{0x0A0101FF, 5},
		{0x0B000000, MissNextHop},
	}
	for _, c := range cases {
		if got := table.Lookup(c.addr); got != c.want {
			t.Errorf("Lookup(%#08x) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestDefaultRoute(t *testing.T) {
	table, err := NewTable([]Route{
		{Prefix: 0, PLen: 0, NextHop: 9},
		{Prefix: 0xC0A80000, PLen: 16, NextHop: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Lookup(0x01020304); got != 9 {
		t.Errorf("default route: got %d, want 9", got)
	}
	if got := table.Lookup(0xC0A80001); got != 1 {
		t.Errorf("specific route: got %d, want 1", got)
	}
}

func TestLongPrefixSpillsToTblLong(t *testing.T) {
	table, err := NewTable([]Route{
		{Prefix: 0x0A010100, PLen: 24, NextHop: 1},
		{Prefix: 0x0A010140, PLen: 26, NextHop: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, blocks := table.Size(); blocks != 1 {
		t.Errorf("TBLlong blocks = %d, want 1", blocks)
	}
	if got := table.Lookup(0x0A010141); got != 2 {
		t.Errorf("long prefix: got %d, want 2", got)
	}
	if got := table.Lookup(0x0A010101); got != 1 {
		t.Errorf("covering /24 inside extended block: got %d, want 1", got)
	}
}

func TestInsertValidation(t *testing.T) {
	if _, err := NewTable([]Route{{PLen: 33}}); err == nil {
		t.Error("plen 33 accepted")
	}
	if _, err := NewTable([]Route{{NextHop: 0x8000}}); err == nil {
		t.Error("oversized next hop accepted")
	}
}

func TestLookupMatchesNaiveProperty(t *testing.T) {
	table, err := NewTable(RandomRoutes(2000, 64, 7))
	if err != nil {
		t.Fatal(err)
	}
	f := func(addr uint32) bool {
		return table.Lookup(addr) == table.NaiveLookup(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLookupMatchesNaiveNearPrefixEdges(t *testing.T) {
	// Random addresses rarely land at prefix boundaries; probe them
	// explicitly.
	routes := RandomRoutes(500, 64, 11)
	table, err := NewTable(routes)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range routes {
		var mask uint32
		if r.PLen > 0 {
			mask = ^uint32(0) << (32 - r.PLen)
		}
		base := r.Prefix & mask
		for _, addr := range []uint32{base, base | ^mask, base + 1, base ^ 0x80000000} {
			if got, want := table.Lookup(addr), table.NaiveLookup(addr); got != want {
				t.Fatalf("edge Lookup(%#08x) = %d, want %d (route %+v)", addr, got, want, r)
			}
		}
	}
}

func newElem(t *testing.T, args ...string) (*IPLookup, *element.ProcContext) {
	t.Helper()
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 8, Rand: rng.New(1)}
	e := &IPLookup{}
	if err := e.Configure(cc, args); err != nil {
		t.Fatal(err)
	}
	return e, &element.ProcContext{NodeLocal: nl, Rand: rng.New(2), CostScale: 1}
}

func mkPkt(dst uint32) *packet.Packet {
	p := &packet.Packet{}
	n := packet.BuildUDP4(p.Buf(), [6]byte{2}, [6]byte{4}, 0x0A000001, dst, 1, 2, 64)
	p.SetLength(n)
	return p
}

func TestElementSetsOutPort(t *testing.T) {
	e, pc := newElem(t, "entries=1000", "seed=3")
	p := mkPkt(0x08080808)
	r := e.Process(pc, p)
	// With a default route, every address is routable.
	if r != 0 {
		t.Fatalf("Process = %d, want 0", r)
	}
	if p.Anno[packet.AnnoOutPort] >= 8 {
		t.Errorf("out port %d out of range", p.Anno[packet.AnnoOutPort])
	}
}

func TestElementSharedTableAcrossReplicas(t *testing.T) {
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 8, Rand: rng.New(1)}
	a, b := &IPLookup{}, &IPLookup{}
	if err := a.Configure(cc, []string{"entries=100", "seed=5"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Configure(cc, []string{"entries=100", "seed=5"}); err != nil {
		t.Fatal(err)
	}
	if a.table != b.table {
		t.Error("replicas did not share the FIB via node-local storage")
	}
}

func TestElementConfigErrors(t *testing.T) {
	nl := element.NewNodeLocal()
	cc := &element.ConfigContext{NodeLocal: nl, NumPorts: 8, Rand: rng.New(1)}
	for _, args := range [][]string{{"entries=x"}, {"seed=x"}, {"bogus=1"}} {
		if err := (&IPLookup{}).Configure(cc, args); err == nil {
			t.Errorf("config %v accepted", args)
		}
	}
}

func TestCPUAndGPUPathsAgree(t *testing.T) {
	e, pc := newElem(t, "entries=5000", "seed=9")
	var cpuPorts, gpuPorts []uint64
	var b batch.Batch
	r := rng.New(77)
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		pkts[i] = mkPkt(r.Uint32())
		b.Add(pkts[i])
	}
	// CPU side.
	for _, p := range pkts {
		if e.Process(pc, p) == 0 {
			cpuPorts = append(cpuPorts, p.Anno[packet.AnnoOutPort])
		} else {
			cpuPorts = append(cpuPorts, 0xdead)
		}
		p.Anno[packet.AnnoOutPort] = 0
	}
	// Device side.
	e.ProcessOffloaded(pc, &b)
	for i, p := range pkts {
		want := cpuPorts[i]
		if want == 0xdead {
			if b.Result(i) != batch.ResultDrop {
				t.Fatalf("pkt %d: CPU dropped, GPU did not", i)
			}
			continue
		}
		gpuPorts = append(gpuPorts, p.Anno[packet.AnnoOutPort])
		if p.Anno[packet.AnnoOutPort] != want {
			t.Fatalf("pkt %d: CPU port %d, GPU port %d", i, want, p.Anno[packet.AnnoOutPort])
		}
	}
	if len(gpuPorts) == 0 {
		t.Error("no packets routed")
	}
}

func TestDatablocksDeclaration(t *testing.T) {
	e := &IPLookup{}
	dbs := e.Datablocks()
	if len(dbs) != 2 {
		t.Fatalf("%d datablocks, want 2", len(dbs))
	}
	// H2D is tiny: 4 bytes per packet regardless of frame size.
	if got := dbs[0].BytesFor(1500); got != 4 {
		t.Errorf("dst datablock bytes = %d, want 4", got)
	}
	if !dbs[0].H2D || dbs[0].D2H {
		t.Error("dst datablock directions wrong")
	}
	if !dbs[1].D2H || dbs[1].BytesFor(64) != 4 {
		t.Error("result datablock wrong")
	}
}

func BenchmarkLookup(b *testing.B) {
	table, err := NewTable(RandomRoutes(100000, 256, 1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = r.Uint32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Lookup(addrs[i%1024])
	}
}
