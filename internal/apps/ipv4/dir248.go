// Package ipv4 implements the IPv4 router application: DIR-24-8 longest
// prefix matching (Gupta, Lin, McKeown — the algorithm PacketShader's IPv4
// lookup uses, reused by the paper §4.1) and the offloadable IPLookup
// element.
package ipv4

import (
	"fmt"
	"sort"

	"nba/internal/rng"
)

// MissNextHop is returned by Lookup when no route matches.
const MissNextHop = 0xFFFF

// maxNextHop is the largest representable next hop (the top bit of a TBL24
// entry marks an extension into TBLlong).
const maxNextHop = 0x7FFE

// Route is one FIB entry.
type Route struct {
	Prefix  uint32
	PLen    int
	NextHop uint16
}

// Table is a DIR-24-8 lookup table: TBL24 holds one entry per /24; prefixes
// longer than 24 bits spill into 256-entry TBLlong blocks. Lookups make at
// most two dependent memory accesses (paper §4.1).
type Table struct {
	tbl24   []uint16 // 1<<24 entries
	tblLong []uint16 // blocks of 256
	routes  []Route  // kept for reference/naive comparison
}

const extFlag = 0x8000

// isExt reports whether a TBL24 entry points into TBLlong. MissNextHop
// (0xFFFF) also has the extension bit set, so it must be excluded; block
// IDs are capped below 0x7FFF to keep 0xFFFF unambiguous.
func isExt(e uint16) bool { return e&extFlag != 0 && e != MissNextHop }

// NewTable builds a table from routes. Routes are inserted in prefix-length
// order so longer prefixes override shorter ones, matching LPM semantics.
func NewTable(routes []Route) (*Table, error) {
	t := &Table{tbl24: make([]uint16, 1<<24)}
	for i := range t.tbl24 {
		t.tbl24[i] = MissNextHop
	}
	sorted := append([]Route(nil), routes...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].PLen < sorted[j].PLen })
	for _, r := range sorted {
		if err := t.insert(r); err != nil {
			return nil, err
		}
	}
	t.routes = sorted
	return t, nil
}

func (t *Table) insert(r Route) error {
	if r.PLen < 0 || r.PLen > 32 {
		return fmt.Errorf("ipv4: prefix length %d out of range", r.PLen)
	}
	if r.NextHop > maxNextHop {
		return fmt.Errorf("ipv4: next hop %d exceeds %d", r.NextHop, maxNextHop)
	}
	prefix := r.Prefix
	if r.PLen < 32 {
		prefix &= ^uint32(0) << (32 - r.PLen)
	}
	if r.PLen <= 24 {
		// Fill the covered /24 range; leave extended entries' TBLlong
		// blocks updated instead of clobbering the extension pointer.
		start := prefix >> 8
		count := uint32(1) << (24 - r.PLen)
		for i := uint32(0); i < count; i++ {
			idx := start + i
			if isExt(t.tbl24[idx]) {
				base := int(t.tbl24[idx]&^extFlag) * 256
				block := t.tblLong[base : base+256]
				for j := range block {
					// A later (longer) insert owns its slots; since we
					// insert short→long, overwrite everything here.
					block[j] = r.NextHop
				}
			} else {
				t.tbl24[idx] = r.NextHop
			}
		}
		return nil
	}
	// PLen 25..32: ensure a TBLlong block exists for the /24.
	idx := prefix >> 8
	var blockID uint16
	if isExt(t.tbl24[idx]) {
		blockID = t.tbl24[idx] &^ extFlag
	} else {
		if len(t.tblLong)/256 >= 0x7FFF {
			return fmt.Errorf("ipv4: TBLlong exhausted (%d blocks)", len(t.tblLong)/256)
		}
		blockID = uint16(len(t.tblLong) / 256)
		old := t.tbl24[idx]
		block := make([]uint16, 256)
		for j := range block {
			block[j] = old
		}
		t.tblLong = append(t.tblLong, block...)
		t.tbl24[idx] = extFlag | blockID
	}
	block := t.tblLong[int(blockID)*256 : int(blockID)*256+256]
	low := uint8(prefix)
	count := 1 << (32 - r.PLen)
	for j := 0; j < count; j++ {
		block[int(low)+j] = r.NextHop
	}
	return nil
}

// Lookup returns the next hop for addr, or MissNextHop.
func (t *Table) Lookup(addr uint32) uint16 {
	e := t.tbl24[addr>>8]
	if !isExt(e) {
		return e
	}
	return t.tblLong[uint32(e&^extFlag)*256+uint32(uint8(addr))]
}

// NaiveLookup performs linear longest-prefix match over the route list (the
// reference implementation for property tests).
func (t *Table) NaiveLookup(addr uint32) uint16 {
	best := -1
	var nh uint16 = MissNextHop
	for _, r := range t.routes {
		var mask uint32
		if r.PLen > 0 {
			mask = ^uint32(0) << (32 - r.PLen)
		}
		// >= so that, among equal-length duplicates, the later route wins —
		// matching the table's insertion order semantics.
		if addr&mask == r.Prefix&mask && r.PLen >= best {
			best = r.PLen
			nh = r.NextHop
		}
	}
	return nh
}

// Size returns (TBL24 entries, TBLlong blocks) for diagnostics.
func (t *Table) Size() (int, int) { return len(t.tbl24), len(t.tblLong) / 256 }

// RandomRoutes generates a synthetic FIB: a default route plus n random
// prefixes with an Internet-like length mix (mostly /16-/24, some longer).
func RandomRoutes(n int, numNextHops int, seed uint64) []Route {
	r := rng.New(seed)
	routes := []Route{{Prefix: 0, PLen: 0, NextHop: 0}} // default route
	for i := 0; i < n; i++ {
		var plen int
		switch v := r.Float64(); {
		case v < 0.05:
			plen = 8 + r.Intn(8) // /8../15
		case v < 0.85:
			plen = 16 + r.Intn(9) // /16../24
		default:
			plen = 25 + r.Intn(8) // /25../32
		}
		routes = append(routes, Route{
			Prefix:  r.Uint32() & (^uint32(0) << (32 - plen)),
			PLen:    plen,
			NextHop: uint16(r.Intn(numNextHops)),
		})
	}
	return routes
}
