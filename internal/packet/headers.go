package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire-format sizes and offsets.
const (
	EthHdrLen  = 14
	IPv4HdrLen = 20 // without options
	IPv6HdrLen = 40
	UDPHdrLen  = 8
	ESPHdrLen  = 8 // SPI + sequence number

	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86DD

	ProtoUDP = 17
	ProtoESP = 50
)

// Errors returned by header validation.
var (
	ErrTruncated   = errors.New("packet: truncated header")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadChecksum = errors.New("packet: bad IPv4 checksum")
	ErrBadLength   = errors.New("packet: inconsistent length fields")
	ErrTTLExpired  = errors.New("packet: TTL/hop-limit expired")
)

// --- Ethernet ---

// EthDst returns the destination MAC of frame b.
func EthDst(b []byte) []byte { return b[0:6] }

// EthSrc returns the source MAC of frame b.
func EthSrc(b []byte) []byte { return b[6:12] }

// EthType returns the EtherType of frame b.
func EthType(b []byte) uint16 { return binary.BigEndian.Uint16(b[12:14]) }

// SetEthType stores the EtherType.
func SetEthType(b []byte, t uint16) { binary.BigEndian.PutUint16(b[12:14], t) }

// SwapEthAddrs exchanges source and destination MACs (L2 echo behaviour).
func SwapEthAddrs(b []byte) {
	var tmp [6]byte
	copy(tmp[:], b[0:6])
	copy(b[0:6], b[6:12])
	copy(b[6:12], tmp[:])
}

// IsEthBroadcast reports whether the destination MAC is ff:ff:ff:ff:ff:ff.
func IsEthBroadcast(b []byte) bool {
	for _, v := range b[0:6] {
		if v != 0xff {
			return false
		}
	}
	return true
}

// --- IPv4 ---

// IPv4 field accessors operate on the IPv4 header slice (frame[14:]).

func IPv4Version(h []byte) int      { return int(h[0] >> 4) }
func IPv4IHL(h []byte) int          { return int(h[0]&0x0f) * 4 }
func IPv4TotalLen(h []byte) int     { return int(binary.BigEndian.Uint16(h[2:4])) }
func IPv4TTL(h []byte) int          { return int(h[8]) }
func IPv4Proto(h []byte) int        { return int(h[9]) }
func IPv4Checksum(h []byte) uint16  { return binary.BigEndian.Uint16(h[10:12]) }
func IPv4Src(h []byte) uint32       { return binary.BigEndian.Uint32(h[12:16]) }
func IPv4Dst(h []byte) uint32       { return binary.BigEndian.Uint32(h[16:20]) }
func SetIPv4Src(h []byte, a uint32) { binary.BigEndian.PutUint32(h[12:16], a) }
func SetIPv4Dst(h []byte, a uint32) { binary.BigEndian.PutUint32(h[16:20], a) }

// CheckIPv4 validates the IPv4 header of h (which must start at the IP
// header) against the remaining frame length. It performs the checks of
// Click's CheckIPHeader element: version, header length, total length and
// checksum.
func CheckIPv4(h []byte) error {
	if len(h) < IPv4HdrLen {
		return ErrTruncated
	}
	if IPv4Version(h) != 4 {
		return ErrBadVersion
	}
	ihl := IPv4IHL(h)
	if ihl < IPv4HdrLen || ihl > len(h) {
		return ErrBadLength
	}
	if tl := IPv4TotalLen(h); tl < ihl || tl > len(h) {
		return ErrBadLength
	}
	if InternetChecksum(h[:ihl]) != 0 {
		return ErrBadChecksum
	}
	return nil
}

// DecIPv4TTL decrements the TTL and incrementally updates the checksum
// (RFC 1624). It returns ErrTTLExpired when the TTL reaches zero.
func DecIPv4TTL(h []byte) error {
	if h[8] <= 1 {
		return ErrTTLExpired
	}
	h[8]--
	// Incremental update: HC' = HC + 1 (in one's complement arithmetic),
	// since decrementing the TTL decreases the 16-bit word h[8:10] by 0x100.
	sum := uint32(binary.BigEndian.Uint16(h[10:12])) + 0x100
	sum = (sum & 0xffff) + (sum >> 16)
	binary.BigEndian.PutUint16(h[10:12], uint16(sum))
	return nil
}

// SetIPv4Checksum recomputes and stores the header checksum.
func SetIPv4Checksum(h []byte) {
	h[10], h[11] = 0, 0
	binary.BigEndian.PutUint16(h[10:12], InternetChecksum(h[:IPv4IHL(h)]))
}

// --- IPv6 ---

func IPv6Version(h []byte) int    { return int(h[0] >> 4) }
func IPv6PayloadLen(h []byte) int { return int(binary.BigEndian.Uint16(h[4:6])) }
func IPv6NextHeader(h []byte) int { return int(h[6]) }
func IPv6HopLimit(h []byte) int   { return int(h[7]) }
func IPv6Src(h []byte) []byte     { return h[8:24] }
func IPv6Dst(h []byte) []byte     { return h[24:40] }

// IPv6Addr is a 128-bit address as two big-endian words, convenient for
// longest-prefix-match arithmetic.
type IPv6Addr struct{ Hi, Lo uint64 }

// IPv6DstAddr extracts the destination address of header h.
func IPv6DstAddr(h []byte) IPv6Addr {
	return IPv6Addr{
		Hi: binary.BigEndian.Uint64(h[24:32]),
		Lo: binary.BigEndian.Uint64(h[32:40]),
	}
}

// PutIPv6 stores a into the 16-byte slice b.
func (a IPv6Addr) Put(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], a.Hi)
	binary.BigEndian.PutUint64(b[8:16], a.Lo)
}

// Mask returns the address masked to its leading plen bits.
func (a IPv6Addr) Mask(plen int) IPv6Addr {
	switch {
	case plen <= 0:
		return IPv6Addr{}
	case plen >= 128:
		return a
	case plen <= 64:
		return IPv6Addr{Hi: a.Hi &^ (1<<(64-plen) - 1)}
	default:
		return IPv6Addr{Hi: a.Hi, Lo: a.Lo &^ (1<<(128-plen) - 1)}
	}
}

func (a IPv6Addr) String() string { return fmt.Sprintf("%016x:%016x", a.Hi, a.Lo) }

// CheckIPv6 validates an IPv6 header.
func CheckIPv6(h []byte) error {
	if len(h) < IPv6HdrLen {
		return ErrTruncated
	}
	if IPv6Version(h) != 6 {
		return ErrBadVersion
	}
	if pl := IPv6PayloadLen(h); IPv6HdrLen+pl > len(h) {
		return ErrBadLength
	}
	return nil
}

// DecIPv6HopLimit decrements the hop limit; IPv6 has no header checksum.
func DecIPv6HopLimit(h []byte) error {
	if h[7] <= 1 {
		return ErrTTLExpired
	}
	h[7]--
	return nil
}

// --- UDP ---

func UDPSrcPort(h []byte) uint16 { return binary.BigEndian.Uint16(h[0:2]) }
func UDPDstPort(h []byte) uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// --- Checksum ---

// InternetChecksum computes the RFC 1071 one's-complement checksum of b.
// Computing it over a header that contains its checksum field yields zero
// when the stored checksum is valid.
func InternetChecksum(b []byte) uint16 {
	var sum uint32
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// --- Frame builders (used by generators and tests) ---

// BuildUDP4 assembles an Ethernet+IPv4+UDP frame of exactly frameLen bytes
// into buf and returns frameLen. The payload is left as-is in buf (callers
// may pre-fill it). frameLen must be >= 42 (headers) and fit the buffer.
func BuildUDP4(buf []byte, srcMAC, dstMAC [6]byte, srcIP, dstIP uint32, sport, dport uint16, frameLen int) int {
	const minLen = EthHdrLen + IPv4HdrLen + UDPHdrLen
	if frameLen < minLen || frameLen > len(buf) {
		panic(fmt.Sprintf("packet: BuildUDP4 frameLen %d out of range [%d,%d]", frameLen, minLen, len(buf)))
	}
	copy(buf[0:6], dstMAC[:])
	copy(buf[6:12], srcMAC[:])
	SetEthType(buf, EtherTypeIPv4)

	h := buf[EthHdrLen:]
	ipLen := frameLen - EthHdrLen
	h[0] = 0x45 // version 4, IHL 5
	h[1] = 0
	binary.BigEndian.PutUint16(h[2:4], uint16(ipLen))
	binary.BigEndian.PutUint16(h[4:6], 0) // ID
	binary.BigEndian.PutUint16(h[6:8], 0) // flags/frag
	h[8] = 64                             // TTL
	h[9] = ProtoUDP
	SetIPv4Src(h, srcIP)
	SetIPv4Dst(h, dstIP)
	SetIPv4Checksum(h)

	u := h[IPv4HdrLen:]
	binary.BigEndian.PutUint16(u[0:2], sport)
	binary.BigEndian.PutUint16(u[2:4], dport)
	binary.BigEndian.PutUint16(u[4:6], uint16(ipLen-IPv4HdrLen))
	binary.BigEndian.PutUint16(u[6:8], 0) // UDP checksum optional over IPv4
	return frameLen
}

// BuildUDP6 assembles an Ethernet+IPv6+UDP frame of exactly frameLen bytes.
func BuildUDP6(buf []byte, srcMAC, dstMAC [6]byte, srcIP, dstIP IPv6Addr, sport, dport uint16, frameLen int) int {
	const minLen = EthHdrLen + IPv6HdrLen + UDPHdrLen
	if frameLen < minLen || frameLen > len(buf) {
		panic(fmt.Sprintf("packet: BuildUDP6 frameLen %d out of range [%d,%d]", frameLen, minLen, len(buf)))
	}
	copy(buf[0:6], dstMAC[:])
	copy(buf[6:12], srcMAC[:])
	SetEthType(buf, EtherTypeIPv6)

	h := buf[EthHdrLen:]
	h[0], h[1], h[2], h[3] = 0x60, 0, 0, 0
	binary.BigEndian.PutUint16(h[4:6], uint16(frameLen-EthHdrLen-IPv6HdrLen))
	h[6] = ProtoUDP
	h[7] = 64 // hop limit
	srcIP.Put(h[8:24])
	dstIP.Put(h[24:40])

	u := h[IPv6HdrLen:]
	binary.BigEndian.PutUint16(u[0:2], sport)
	binary.BigEndian.PutUint16(u[2:4], dport)
	binary.BigEndian.PutUint16(u[4:6], uint16(frameLen-EthHdrLen-IPv6HdrLen))
	binary.BigEndian.PutUint16(u[6:8], 0)
	return frameLen
}

// FlowHash5 computes a deterministic 5-tuple hash for RSS distribution and
// flow identification. It is a Toeplitz-flavoured mix (not the exact Intel
// key schedule, which is unnecessary for the simulation) over src/dst
// address, protocol and L4 ports.
func FlowHash5(frame []byte) uint32 {
	if len(frame) < EthHdrLen+1 {
		return 0
	}
	var h uint64 = 0x9E3779B97F4A7C15
	mix := func(v uint64) {
		h ^= v
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
	}
	switch EthType(frame) {
	case EtherTypeIPv4:
		ip := frame[EthHdrLen:]
		if len(ip) < IPv4HdrLen {
			return uint32(h)
		}
		mix(uint64(IPv4Src(ip)))
		mix(uint64(IPv4Dst(ip)))
		mix(uint64(IPv4Proto(ip)))
		ihl := IPv4IHL(ip)
		if len(ip) >= ihl+4 {
			mix(uint64(binary.BigEndian.Uint32(ip[ihl : ihl+4]))) // both ports
		}
	case EtherTypeIPv6:
		ip := frame[EthHdrLen:]
		if len(ip) < IPv6HdrLen {
			return uint32(h)
		}
		a := IPv6DstAddr(ip)
		mix(binary.BigEndian.Uint64(ip[8:16]))
		mix(binary.BigEndian.Uint64(ip[16:24]))
		mix(a.Hi)
		mix(a.Lo)
		mix(uint64(IPv6NextHeader(ip)))
		if len(ip) >= IPv6HdrLen+4 {
			mix(uint64(binary.BigEndian.Uint32(ip[IPv6HdrLen : IPv6HdrLen+4])))
		}
	default:
		for _, b := range frame[:EthHdrLen] {
			mix(uint64(b))
		}
	}
	return uint32(h ^ h>>32)
}

// TCPHdrLen is the minimal TCP header size (no options).
const TCPHdrLen = 20

// ProtoTCP is the IPv4 protocol number for TCP.
const ProtoTCP = 6

// BuildTCP4 assembles an Ethernet+IPv4+TCP frame of exactly frameLen bytes
// (no TCP options; flags as given). The payload region is left untouched.
func BuildTCP4(buf []byte, srcMAC, dstMAC [6]byte, srcIP, dstIP uint32, sport, dport uint16, seq uint32, flags byte, frameLen int) int {
	const minLen = EthHdrLen + IPv4HdrLen + TCPHdrLen
	if frameLen < minLen || frameLen > len(buf) {
		panic(fmt.Sprintf("packet: BuildTCP4 frameLen %d out of range [%d,%d]", frameLen, minLen, len(buf)))
	}
	copy(buf[0:6], dstMAC[:])
	copy(buf[6:12], srcMAC[:])
	SetEthType(buf, EtherTypeIPv4)

	h := buf[EthHdrLen:]
	ipLen := frameLen - EthHdrLen
	h[0] = 0x45
	h[1] = 0
	binary.BigEndian.PutUint16(h[2:4], uint16(ipLen))
	binary.BigEndian.PutUint16(h[4:6], 0)
	binary.BigEndian.PutUint16(h[6:8], 0)
	h[8] = 64
	h[9] = ProtoTCP
	SetIPv4Src(h, srcIP)
	SetIPv4Dst(h, dstIP)
	SetIPv4Checksum(h)

	tcp := h[IPv4HdrLen:]
	binary.BigEndian.PutUint16(tcp[0:2], sport)
	binary.BigEndian.PutUint16(tcp[2:4], dport)
	binary.BigEndian.PutUint32(tcp[4:8], seq)
	binary.BigEndian.PutUint32(tcp[8:12], 0) // ack
	tcp[12] = 5 << 4                         // data offset: 5 words
	tcp[13] = flags
	binary.BigEndian.PutUint16(tcp[14:16], 65535) // window
	binary.BigEndian.PutUint16(tcp[16:18], 0)     // checksum (not computed)
	binary.BigEndian.PutUint16(tcp[18:20], 0)     // urgent
	return frameLen
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)
