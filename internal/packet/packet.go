// Package packet provides the packet buffer type and wire-format codecs
// (Ethernet, IPv4, IPv6, UDP, ESP) used throughout the framework.
//
// Packets are real byte buffers: elements parse and mutate actual header
// fields, IPsec really encrypts payloads, the IDS really scans them. Only
// the *timing* of those operations is simulated.
package packet

import (
	"fmt"

	"nba/internal/simtime"
)

// MaxFrameLen is the buffer capacity of one packet. It leaves room for the
// IPsec tunnel-mode expansion of a 1500-byte frame (outer IPv4 + ESP header
// + IV + padding + ICV = 1558 bytes) while keeping preallocated packet
// pools compact.
const MaxFrameLen = 1664

// NumAnnos is the number of per-packet annotation slots. The paper restricts
// the commonly used fields to 7 entries so the annotation set fits a cache
// line (§3.2).
const NumAnnos = 7

// Annotation slot assignments. These mirror the uses called out in the
// paper: timestamping, input NIC port, flow IDs for protocol handling, and
// the output-port annotation that replaces multi-edge branches (§3.2).
const (
	AnnoTimestamp   = iota // RX timestamp (virtual time, ps)
	AnnoInPort             // input NIC port index
	AnnoOutPort            // output NIC port chosen by routing elements
	AnnoFlowID             // flow hash for protocol handling / SA selection
	AnnoLBDecision         // load balancer device choice (batch-level mirror)
	AnnoMatchResult        // IDS match verdict
	AnnoUser               // free for applications
)

// Packet is one frame plus metadata. Packets live in per-socket mempools
// and are recycled; they must not be retained after release.
type Packet struct {
	buf    [MaxFrameLen]byte
	length int

	// Arrival is the RX timestamp in virtual time.
	Arrival simtime.Time
	// InPort is the NIC port the packet arrived on.
	InPort int
	// Seq is a generator-assigned sequence number (diagnostics).
	Seq uint64
	// OrigLen is the frame length at RX time. Throughput is accounted in
	// terms of input traffic processed, so elements that grow frames (ESP
	// encapsulation) do not inflate the numbers.
	OrigLen int
	// Tenant is the index of the tenant app graph this packet belongs to
	// (set at RX from the queue's tenant; 0 in single-tenant runs). It
	// makes every downstream event and drop attributable to a tenant.
	Tenant int32
	// Anno is the per-packet annotation set.
	Anno [NumAnnos]uint64
	// Tainted is the corruption injector's ground-truth mark: set when a
	// DeviceCorrupt fault flips bytes in this frame, cleared on Reset. The
	// invariant oracle uses it to prove corrupted payloads never reach TX
	// while the integrity sentinel is armed; no framework logic may read it
	// to influence behaviour.
	Tainted bool
}

// Reset clears the packet for reuse (mempool.Resetter).
func (p *Packet) Reset() {
	p.length = 0
	p.Arrival = 0
	p.InPort = 0
	p.Seq = 0
	p.OrigLen = 0
	p.Tenant = 0
	p.Anno = [NumAnnos]uint64{}
	p.Tainted = false
}

// Data returns the frame contents.
func (p *Packet) Data() []byte { return p.buf[:p.length] }

// Length returns the frame length in bytes.
func (p *Packet) Length() int { return p.length }

// SetLength resizes the frame within buffer capacity.
func (p *Packet) SetLength(n int) {
	if n < 0 || n > MaxFrameLen {
		panic(fmt.Sprintf("packet: SetLength(%d) out of range [0,%d]", n, MaxFrameLen))
	}
	p.length = n
}

// Buf exposes the full backing buffer (for in-place expansion such as ESP
// encapsulation).
func (p *Packet) Buf() []byte { return p.buf[:] }

// CopyFrom replaces the frame contents.
func (p *Packet) CopyFrom(b []byte) {
	if len(b) > MaxFrameLen {
		panic(fmt.Sprintf("packet: frame of %d bytes exceeds capacity %d", len(b), MaxFrameLen))
	}
	copy(p.buf[:], b)
	p.length = len(b)
}
