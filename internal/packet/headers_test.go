package packet

import (
	"testing"
	"testing/quick"
)

var (
	srcMAC = [6]byte{0x02, 0, 0, 0, 0, 0x01}
	dstMAC = [6]byte{0x02, 0, 0, 0, 0, 0x02}
)

func buildV4(t *testing.T, frameLen int) []byte {
	t.Helper()
	buf := make([]byte, MaxFrameLen)
	n := BuildUDP4(buf, srcMAC, dstMAC, 0x0A000001, 0xC0A80101, 1234, 53, frameLen)
	return buf[:n]
}

func TestBuildUDP4RoundTrip(t *testing.T) {
	f := buildV4(t, 64)
	if EthType(f) != EtherTypeIPv4 {
		t.Errorf("EtherType = %#x, want IPv4", EthType(f))
	}
	ip := f[EthHdrLen:]
	if err := CheckIPv4(ip); err != nil {
		t.Fatalf("CheckIPv4 on freshly built frame: %v", err)
	}
	if IPv4Src(ip) != 0x0A000001 || IPv4Dst(ip) != 0xC0A80101 {
		t.Errorf("addresses wrong: src=%#x dst=%#x", IPv4Src(ip), IPv4Dst(ip))
	}
	if IPv4Proto(ip) != ProtoUDP {
		t.Errorf("proto = %d, want UDP", IPv4Proto(ip))
	}
	if IPv4TotalLen(ip) != 50 {
		t.Errorf("total len = %d, want 50", IPv4TotalLen(ip))
	}
	u := ip[IPv4HdrLen:]
	if UDPSrcPort(u) != 1234 || UDPDstPort(u) != 53 {
		t.Errorf("ports = %d,%d, want 1234,53", UDPSrcPort(u), UDPDstPort(u))
	}
}

func TestCheckIPv4Rejections(t *testing.T) {
	f := buildV4(t, 64)
	ip := f[EthHdrLen:]

	// Corrupt the version.
	save := ip[0]
	ip[0] = 0x55
	if err := CheckIPv4(ip); err != ErrBadVersion {
		t.Errorf("bad version: err = %v, want ErrBadVersion", err)
	}
	ip[0] = save

	// Corrupt a byte without fixing the checksum.
	ip[16] ^= 0xff
	if err := CheckIPv4(ip); err != ErrBadChecksum {
		t.Errorf("corrupted dst: err = %v, want ErrBadChecksum", err)
	}
	ip[16] ^= 0xff

	// Truncated.
	if err := CheckIPv4(ip[:10]); err != ErrTruncated {
		t.Errorf("short header: err = %v, want ErrTruncated", err)
	}

	// Total length exceeding the frame.
	f2 := buildV4(t, 64)
	ip2 := f2[EthHdrLen:]
	ip2[2], ip2[3] = 0xff, 0xff
	SetIPv4Checksum(ip2)
	if err := CheckIPv4(ip2); err != ErrBadLength {
		t.Errorf("oversized total length: err = %v, want ErrBadLength", err)
	}
}

func TestDecIPv4TTLIncrementalChecksum(t *testing.T) {
	// Property: after DecIPv4TTL the checksum must still verify, for any TTL.
	f := func(ttl uint8, dst uint32) bool {
		if ttl < 2 {
			ttl += 2
		}
		buf := make([]byte, 128)
		BuildUDP4(buf, srcMAC, dstMAC, 1, dst, 9, 9, 64)
		ip := buf[EthHdrLen:]
		ip[8] = ttl
		SetIPv4Checksum(ip)
		if err := DecIPv4TTL(ip); err != nil {
			return false
		}
		return IPv4TTL(ip) == int(ttl)-1 && CheckIPv4(ip[:64-EthHdrLen]) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecIPv4TTLExpiry(t *testing.T) {
	f := buildV4(t, 64)
	ip := f[EthHdrLen:]
	ip[8] = 1
	SetIPv4Checksum(ip)
	if err := DecIPv4TTL(ip); err != ErrTTLExpired {
		t.Errorf("TTL=1: err = %v, want ErrTTLExpired", err)
	}
}

func TestBuildUDP6RoundTrip(t *testing.T) {
	buf := make([]byte, MaxFrameLen)
	src := IPv6Addr{Hi: 0x20010DB8 << 32, Lo: 1}
	dst := IPv6Addr{Hi: 0x20010DB8<<32 | 0xFFFF, Lo: 2}
	n := BuildUDP6(buf, srcMAC, dstMAC, src, dst, 1000, 2000, 128)
	f := buf[:n]
	if EthType(f) != EtherTypeIPv6 {
		t.Fatalf("EtherType = %#x, want IPv6", EthType(f))
	}
	ip := f[EthHdrLen:]
	if err := CheckIPv6(ip); err != nil {
		t.Fatalf("CheckIPv6: %v", err)
	}
	if got := IPv6DstAddr(ip); got != dst {
		t.Errorf("dst = %v, want %v", got, dst)
	}
	if IPv6HopLimit(ip) != 64 {
		t.Errorf("hop limit = %d, want 64", IPv6HopLimit(ip))
	}
	if err := DecIPv6HopLimit(ip); err != nil || IPv6HopLimit(ip) != 63 {
		t.Errorf("DecIPv6HopLimit: err=%v hl=%d", err, IPv6HopLimit(ip))
	}
}

func TestCheckIPv6Rejections(t *testing.T) {
	buf := make([]byte, MaxFrameLen)
	n := BuildUDP6(buf, srcMAC, dstMAC, IPv6Addr{}, IPv6Addr{Lo: 1}, 1, 2, 64)
	ip := buf[EthHdrLen:n]
	if err := CheckIPv6(ip[:20]); err != ErrTruncated {
		t.Errorf("short: err = %v, want ErrTruncated", err)
	}
	ip[0] = 0x40
	if err := CheckIPv6(ip); err != ErrBadVersion {
		t.Errorf("bad version: err = %v, want ErrBadVersion", err)
	}
	ip[0] = 0x60
	ip[4], ip[5] = 0xff, 0xff
	if err := CheckIPv6(ip); err != ErrBadLength {
		t.Errorf("oversized payload: err = %v, want ErrBadLength", err)
	}
}

func TestIPv6AddrMask(t *testing.T) {
	a := IPv6Addr{Hi: 0xFFFFFFFFFFFFFFFF, Lo: 0xFFFFFFFFFFFFFFFF}
	cases := []struct {
		plen int
		want IPv6Addr
	}{
		{0, IPv6Addr{}},
		{1, IPv6Addr{Hi: 0x8000000000000000}},
		{64, IPv6Addr{Hi: 0xFFFFFFFFFFFFFFFF}},
		{65, IPv6Addr{Hi: 0xFFFFFFFFFFFFFFFF, Lo: 0x8000000000000000}},
		{128, a},
	}
	for _, c := range cases {
		if got := a.Mask(c.plen); got != c.want {
			t.Errorf("Mask(%d) = %v, want %v", c.plen, got, c.want)
		}
	}
}

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := InternetChecksum(b); got != 0x220d {
		t.Errorf("checksum = %#04x, want 0x220d", got)
	}
	// Odd-length input must be handled (pad with zero).
	if got := InternetChecksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd checksum = %#04x", got)
	}
}

func TestSwapEthAddrsAndBroadcast(t *testing.T) {
	f := buildV4(t, 64)
	SwapEthAddrs(f)
	if [6]byte(EthDst(f)) != srcMAC || [6]byte(EthSrc(f)) != dstMAC {
		t.Error("SwapEthAddrs did not exchange MACs")
	}
	if IsEthBroadcast(f) {
		t.Error("unicast frame reported as broadcast")
	}
	copy(f[0:6], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	if !IsEthBroadcast(f) {
		t.Error("broadcast frame not detected")
	}
}

func TestFlowHashStabilityAndSpread(t *testing.T) {
	// Same 5-tuple must hash identically; different tuples should spread.
	buf := make([]byte, MaxFrameLen)
	BuildUDP4(buf, srcMAC, dstMAC, 10, 20, 30, 40, 64)
	h1 := FlowHash5(buf[:64])
	h2 := FlowHash5(buf[:64])
	if h1 != h2 {
		t.Error("hash not deterministic")
	}
	seen := map[uint32]bool{}
	for i := uint32(0); i < 1000; i++ {
		BuildUDP4(buf, srcMAC, dstMAC, 10+i, 20, 30, 40, 64)
		seen[FlowHash5(buf[:64])] = true
	}
	if len(seen) < 990 {
		t.Errorf("only %d distinct hashes for 1000 flows", len(seen))
	}
	// Queue assignment balance across 7 queues must be within 20%.
	counts := make([]int, 7)
	for i := uint32(0); i < 7000; i++ {
		BuildUDP4(buf, srcMAC, dstMAC, 10+i, 20+i*7, 30, 40, 64)
		counts[FlowHash5(buf[:64])%7]++
	}
	for q, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("queue %d got %d of 7000 packets; poor RSS spread", q, c)
		}
	}
}

func TestPacketBufferOps(t *testing.T) {
	var p Packet
	p.CopyFrom([]byte{1, 2, 3})
	if p.Length() != 3 || p.Data()[2] != 3 {
		t.Error("CopyFrom/Data mismatch")
	}
	p.SetLength(2)
	if len(p.Data()) != 2 {
		t.Error("SetLength did not resize")
	}
	p.Anno[AnnoOutPort] = 5
	p.Arrival = 99
	p.Reset()
	if p.Length() != 0 || p.Anno[AnnoOutPort] != 0 || p.Arrival != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestPacketSetLengthBounds(t *testing.T) {
	var p Packet
	defer func() {
		if recover() == nil {
			t.Error("SetLength beyond capacity did not panic")
		}
	}()
	p.SetLength(MaxFrameLen + 1)
}

func BenchmarkCheckIPv4(b *testing.B) {
	buf := make([]byte, MaxFrameLen)
	BuildUDP4(buf, srcMAC, dstMAC, 1, 2, 3, 4, 64)
	ip := buf[EthHdrLen:64]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := CheckIPv4(ip); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowHash5(b *testing.B) {
	buf := make([]byte, MaxFrameLen)
	BuildUDP4(buf, srcMAC, dstMAC, 1, 2, 3, 4, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FlowHash5(buf[:64])
	}
}

func TestBuildTCP4(t *testing.T) {
	buf := make([]byte, MaxFrameLen)
	n := BuildTCP4(buf, srcMAC, dstMAC, 0x0A000001, 0xC0A80101, 40000, 80, 12345, TCPSyn|TCPAck, 128)
	f := buf[:n]
	ip := f[EthHdrLen:]
	if err := CheckIPv4(ip); err != nil {
		t.Fatalf("CheckIPv4: %v", err)
	}
	if IPv4Proto(ip) != ProtoTCP {
		t.Errorf("proto = %d, want TCP", IPv4Proto(ip))
	}
	tcp := ip[IPv4HdrLen:]
	if UDPSrcPort(tcp) != 40000 || UDPDstPort(tcp) != 80 {
		t.Error("TCP ports wrong (same offsets as UDP)")
	}
	if tcp[13] != TCPSyn|TCPAck {
		t.Errorf("flags = %#x", tcp[13])
	}
	// FlowHash5 covers TCP too (ports at the same offset).
	if FlowHash5(f) == 0 {
		t.Error("flow hash zero")
	}
}
