package packet

import (
	"bytes"
	"testing"
)

// fuzzSeedUDP4 builds a well-formed Ethernet+IPv4+UDP frame for the corpus.
func fuzzSeedUDP4() []byte {
	buf := make([]byte, 128)
	n := BuildUDP4(buf, [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2},
		0x0A000001, 0xC0A80101, 1234, 53, 64)
	return buf[:n]
}

func fuzzSeedUDP6() []byte {
	buf := make([]byte, 128)
	n := BuildUDP6(buf, [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2},
		IPv6Addr{Hi: 0x20010DB800000000, Lo: 1}, IPv6Addr{Hi: 0x20010DB800000000, Lo: 2},
		1234, 53, 80)
	return buf[:n]
}

// FuzzHeaderParse throws arbitrary bytes at the header validators and
// accessors: nothing may panic, and on frames that validate, re-serializing
// the checksum and decrementing the TTL must keep the header valid.
func FuzzHeaderParse(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0x45})
	f.Add(fuzzSeedUDP4())
	f.Add(fuzzSeedUDP6())
	f.Add(fuzzSeedUDP4()[:EthHdrLen+IPv4HdrLen-1]) // truncated IP header
	bad := fuzzSeedUDP4()
	bad[EthHdrLen+10] ^= 0xff // corrupt checksum
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Hashing and Ethernet accessors must tolerate any length.
		_ = FlowHash5(data)
		if len(data) >= EthHdrLen {
			_ = EthType(data)
			_ = IsEthBroadcast(data)
			dup := append([]byte(nil), data...)
			SwapEthAddrs(dup)
			SwapEthAddrs(dup)
			if !bytes.Equal(dup, data) {
				t.Fatal("SwapEthAddrs twice is not the identity")
			}
		}
		if len(data) < EthHdrLen {
			return
		}
		h := append([]byte(nil), data[EthHdrLen:]...)

		if err := CheckIPv4(h); err == nil {
			if IPv4Version(h) != 4 {
				t.Fatalf("CheckIPv4 accepted version %d", IPv4Version(h))
			}
			if ihl := IPv4IHL(h); ihl < IPv4HdrLen || ihl > len(h) {
				t.Fatalf("CheckIPv4 accepted IHL %d for %d header bytes", ihl, len(h))
			}
			// Reserialize: recomputing the checksum over a header that already
			// validates must keep it valid.
			SetIPv4Checksum(h)
			if err := CheckIPv4(h); err != nil {
				t.Fatalf("header invalid after SetIPv4Checksum: %v", err)
			}
			// The RFC 1624 incremental TTL update must preserve validity.
			ttl := IPv4TTL(h)
			if err := DecIPv4TTL(h); err == nil {
				if got := IPv4TTL(h); got != ttl-1 {
					t.Fatalf("DecIPv4TTL: ttl %d -> %d", ttl, got)
				}
				if err := CheckIPv4(h); err != nil {
					t.Fatalf("incremental checksum update broke the header: %v", err)
				}
			} else if ttl > 1 {
				t.Fatalf("DecIPv4TTL refused ttl %d: %v", ttl, err)
			}
		}

		if err := CheckIPv6(h); err == nil {
			if IPv6Version(h) != 6 {
				t.Fatalf("CheckIPv6 accepted version %d", IPv6Version(h))
			}
			a := IPv6DstAddr(h)
			if a.Mask(128) != a || a.Mask(0) != (IPv6Addr{}) {
				t.Fatalf("IPv6Addr.Mask endpoints wrong for %v", a)
			}
			var round [16]byte
			a.Put(round[:])
			if IPv6DstAddr(append(make([]byte, 24), round[:]...)) != a {
				t.Fatal("IPv6Addr Put/read round-trip changed the address")
			}
			hl := IPv6HopLimit(h)
			if err := DecIPv6HopLimit(h); err == nil {
				if got := IPv6HopLimit(h); got != hl-1 {
					t.Fatalf("DecIPv6HopLimit: %d -> %d", hl, got)
				}
			} else if hl > 1 {
				t.Fatalf("DecIPv6HopLimit refused hop limit %d: %v", hl, err)
			}
		}
	})
}

// FuzzBuildUDP4 checks the builder/accessor round-trip: every field written
// by BuildUDP4 must read back identically, the frame must validate, and
// re-serializing the checksum must be byte-stable.
func FuzzBuildUDP4(f *testing.F) {
	f.Add(uint32(0x0A000001), uint32(0xC0A80101), uint16(1234), uint16(53), 64)
	f.Add(uint32(0), uint32(0xFFFFFFFF), uint16(0), uint16(0xFFFF), 42)
	f.Add(uint32(0xFF000000), uint32(1), uint16(80), uint16(443), 1514)

	f.Fuzz(func(t *testing.T, src, dst uint32, sport, dport uint16, frameLen int) {
		const minLen = EthHdrLen + IPv4HdrLen + UDPHdrLen
		buf := make([]byte, 2048)
		if frameLen < minLen || frameLen > len(buf) {
			return // builder documents a panic outside this range
		}
		n := BuildUDP4(buf, [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2},
			src, dst, sport, dport, frameLen)
		if n != frameLen {
			t.Fatalf("BuildUDP4 returned %d, want %d", n, frameLen)
		}
		frame := buf[:n]
		if EthType(frame) != EtherTypeIPv4 {
			t.Fatalf("EtherType = %#x", EthType(frame))
		}
		h := frame[EthHdrLen:]
		if err := CheckIPv4(h); err != nil {
			t.Fatalf("built frame does not validate: %v", err)
		}
		if IPv4Src(h) != src || IPv4Dst(h) != dst {
			t.Fatalf("addresses: %#x/%#x, want %#x/%#x", IPv4Src(h), IPv4Dst(h), src, dst)
		}
		if IPv4TotalLen(h) != frameLen-EthHdrLen || IPv4Proto(h) != ProtoUDP {
			t.Fatalf("total len %d proto %d", IPv4TotalLen(h), IPv4Proto(h))
		}
		u := h[IPv4HdrLen:]
		if UDPSrcPort(u) != sport || UDPDstPort(u) != dport {
			t.Fatalf("ports: %d/%d, want %d/%d", UDPSrcPort(u), UDPDstPort(u), sport, dport)
		}
		// Byte-stable reserialization: the builder stores the canonical
		// checksum, so recomputing it must not change a single byte.
		dup := append([]byte(nil), frame...)
		SetIPv4Checksum(dup[EthHdrLen:])
		if !bytes.Equal(dup, frame) {
			t.Fatal("SetIPv4Checksum changed a freshly built frame")
		}
	})
}
