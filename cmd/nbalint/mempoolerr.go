package main

import (
	"go/ast"
)

const mempoolPkgPath = "nba/internal/mempool"

// mempoolerrAnalyzer enforces the pool-exhaustion contract: Pool.Get can
// fail (ErrExhausted) and the data path must handle it — typically by
// dropping the batch and counting the drop, exactly like rx_nombuf in DPDK.
// Discarding the error turns exhaustion into a nil-pointer crash later.
// MustGet (panic on failure) is reserved for cmd/ startup paths that sized
// their pools; on the data path it is a latent abort.
var mempoolerrAnalyzer = &analyzer{
	name: "mempoolerr",
	doc:  "flag discarded Pool.Get errors and MustGet outside cmd/",
	applies: func(path string) bool {
		return !isCmdPackage(path) && path != mempoolPkgPath
	},
	run: runMempoolerr,
}

func runMempoolerr(p *pass) {
	info := p.pkg.Info

	isPoolMethodCall := func(e ast.Expr, method string) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		return isMethodOn(info.Selections[sel], mempoolPkgPath, "Pool", method)
	}

	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if isPoolMethodCall(n.X, "Get") {
					p.report(n.Pos(), "mempoolerr",
						"result and error of mempool Get discarded; handle ErrExhausted (drop and count) or the object leaks")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 || len(n.Lhs) != 2 || !isPoolMethodCall(n.Rhs[0], "Get") {
					return true
				}
				if id, ok := n.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
					p.report(n.Pos(), "mempoolerr",
						"error from mempool Get discarded; handle ErrExhausted (drop and count) instead of blanking it")
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
					isMethodOn(info.Selections[sel], mempoolPkgPath, "Pool", "MustGet") {
					p.report(n.Pos(), "mempoolerr",
						"MustGet panics on exhaustion; outside cmd/ startup paths use Get and handle ErrExhausted")
				}
			}
			return true
		})
	}
}
