package main

import (
	"go/ast"
	"go/types"
)

// nondeterminismAnalyzer forbids the four classic determinism killers inside
// simulation packages: wall-clock time, the global math/rand source,
// goroutines, and select. The event engine runs single-threaded in virtual
// time (internal/simtime); any of these silently breaks replayability.
var nondeterminismAnalyzer = &analyzer{
	name:    "nondeterminism",
	doc:     "forbid wall-clock time, global math/rand, go statements and select in simulation packages",
	applies: isSimPackage,
	run:     runNondeterminism,
}

// bannedTimeFuncs are the wall-clock entry points of package time. Types
// like time.Duration remain usable — virtual time is still expressed in
// durations.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Sleep": true,
	"Until": true,
	"Tick":  true,
	"After": true,
}

// allowedRandFuncs are math/rand(/v2) package-level functions that do NOT
// touch the shared global source: constructors for explicitly-seeded
// generators, which is exactly what internal/rng wraps.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNondeterminism(p *pass) {
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.report(n.Pos(), "nondeterminism",
					"go statement in a simulation package; the event engine is single-threaded in virtual time")
			case *ast.SelectStmt:
				p.report(n.Pos(), "nondeterminism",
					"select in a simulation package; channel scheduling order is nondeterministic")
			case *ast.SelectorExpr:
				switch pkgNameOf(info, n.X) {
				case "time":
					if bannedTimeFuncs[n.Sel.Name] {
						p.report(n.Pos(), "nondeterminism",
							"time."+n.Sel.Name+" reads the wall clock; use internal/simtime virtual time")
					}
				case "math/rand", "math/rand/v2":
					if _, isFunc := info.Uses[n.Sel].(*types.Func); isFunc && !allowedRandFuncs[n.Sel.Name] {
						p.report(n.Pos(), "nondeterminism",
							"rand."+n.Sel.Name+" uses the global math/rand source; use a seeded internal/rng generator")
					}
				}
			}
			return true
		})
	}
}
