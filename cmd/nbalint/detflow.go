package main

import (
	"go/ast"
	"go/types"
)

// detflowAnalyzer is the interprocedural complement of the per-file
// nondeterminism rule: it tracks values produced by nondeterminism sources —
// wall-clock reads, the global math/rand source, map iteration order,
// variables written from unsynchronized goroutines — through call chains,
// struct fields and package-level variables into the run-identity sinks:
// trace.Tracer.Emit payloads and hash inputs. The per-file rule only bans the
// sources inside simulation packages; detflow catches a helper in any package
// laundering such a value into the digest, and reports the full source→sink
// path.
var detflowAnalyzer = &modAnalyzer{
	name: "detflow",
	doc:  "taint-track nondeterminism sources into trace digest and hash sinks across call chains",
	run:  runDetflow,
}

var detflowSpec = &flowSpec{
	name:                  "detflow",
	seedCall:              detflowSeedCall,
	seedMapRange:          true,
	seedGoroutine:         true,
	sinkCall:              detflowSinkCall,
	trackFields:           true,
	trackGlobals:          true,
	unknownCallPropagates: true,
}

func runDetflow(m *module) []finding {
	var out []finding
	for _, ff := range runFlow(m, detflowSpec) {
		out = append(out, finding{
			pos:  ff.pos,
			rule: "detflow",
			msg: "nondeterministic value flows into a run-identity sink; path: " +
				renderPath(ff.path),
			path: ff.path,
		})
	}
	return out
}

// detflowSeedCall recognizes the call-shaped nondeterminism sources. The
// source catalogue mirrors the per-file nondeterminism rule (bannedTimeFuncs,
// allowedRandFuncs) so the two rules cannot drift apart.
func detflowSeedCall(p *lintPackage, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch pkgNameOf(p.Info, sel.X) {
	case "time":
		if bannedTimeFuncs[sel.Sel.Name] {
			return "wall clock (time." + sel.Sel.Name + ")"
		}
	case "math/rand", "math/rand/v2":
		if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); isFunc && !allowedRandFuncs[sel.Sel.Name] {
			return "global math/rand source (rand." + sel.Sel.Name + ")"
		}
	}
	return ""
}

// detflowSinkCall recognizes the run-identity sinks: trace.Tracer.Emit (its
// payload feeds the streaming digest) and the methods of hash.Hash values
// (Write/Sum inputs become digests directly).
func detflowSinkCall(p *lintPackage, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := p.Info.Selections[sel]
	if isMethodOn(s, tracePkgPath, "Tracer", "Emit") {
		return "trace digest via (*trace.Tracer).Emit"
	}
	if s != nil && s.Kind() == types.MethodVal {
		if name := sel.Sel.Name; name == "Write" || name == "Sum" {
			if n := namedOrigin(s.Recv()); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "hash" {
				return "hash input via hash." + n.Obj().Name() + "." + name
			}
		}
	}
	return ""
}
