package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// sharedstateAnalyzer is the guard-rail for the planned parallel event engine
// (ROADMAP item 4): state written from simtime.Engine callback context and
// read outside it is exactly the state that becomes a data race once sweep
// cases run on multiple OS threads. The rule computes the set of functions
// reachable from engine callbacks (Engine.At / Engine.After arguments,
// Engine.OnFire installs) over the static call graph and flags:
//
//   - package-level variables written in callback context and accessed by any
//     function outside it;
//   - struct fields written in callback context and read from a different
//     package outside it (same-package accessor methods are the intended
//     happens-after interface and stay exempt).
//
// Functions that take a sync.Mutex / sync.RWMutex lock anywhere in their body
// are treated as synchronized and exempt (coarse, but the engine is currently
// single-threaded — the rule exists to keep new shared state explicit).
var sharedstateAnalyzer = &modAnalyzer{
	name: "sharedstate",
	doc:  "flag state written from engine-callback context and read outside it without synchronization",
	run:  runSharedstate,
}

func runSharedstate(m *module) []finding {
	ctx := callbackContext(m)

	type site struct {
		pos  token.Pos
		pkg  *lintPackage
		desc string // how the enclosing context was reached
	}
	globalWrites := map[*types.Var][]site{}
	fieldWrites := map[*types.Var][]site{}

	// Writes in callback context. slot, when non-nil, is a par job's slot
	// parameter: writes indexed by it are the runner's discipline and exempt.
	scanWrites := func(pkg *lintPackage, body ast.Node, how string, slot *types.Var) {
		info := pkg.Info
		record := func(lhs ast.Expr, pos token.Pos) {
			if isSlotIndexedWrite(info, lhs, slot) {
				return
			}
			switch v := writtenVar(info, lhs).(type) {
			case nil:
			case *types.Var:
				if v.IsField() {
					if writesLocalValue(info, lhs) {
						return // field of a local value-typed copy, not shared
					}
					fieldWrites[v.Origin()] = append(fieldWrites[v.Origin()], site{pos, pkg, how})
				} else if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					globalWrites[v.Origin()] = append(globalWrites[v.Origin()], site{pos, pkg, how})
				}
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					record(lhs, n.Pos())
				}
			case *ast.IncDecStmt:
				record(n.X, n.Pos())
			}
			return true
		})
	}
	for _, fi := range m.order {
		how, in := ctx.funcs[fi.obj]
		if !in || fi.decl.Body == nil || usesLock(fi.pkg.Info, fi.decl.Body) {
			continue
		}
		scanWrites(fi.pkg, fi.decl.Body, how, nil)
	}
	for _, lr := range ctx.lits {
		if usesLock(lr.pkg.Info, lr.lit.Body) {
			continue
		}
		scanWrites(lr.pkg, lr.lit.Body, lr.desc, nil)
	}

	// Par job roots are scanned shallowly — the job body only, never the
	// transitive call graph: a sweep job invokes the entire simulator, and
	// closing over it would flood the rule with the single-threaded hot path.
	// The runner's contract is local by design (a job may write only its own
	// slot), so the body is where violations appear.
	parFns := map[*types.Func]bool{}
	var parLits []callbackRoot
	for _, r := range m.callbackRoots {
		if !r.par {
			continue
		}
		if r.lit != nil {
			parLits = append(parLits, r)
			if !usesLock(r.pkg.Info, r.lit.Body) {
				scanWrites(r.pkg, r.lit.Body, r.desc, r.slot)
			}
			continue
		}
		if r.fn == nil || parFns[r.fn] {
			continue
		}
		parFns[r.fn] = true
		fi := m.funcs[r.fn]
		if fi == nil || fi.decl.Body == nil || usesLock(fi.pkg.Info, fi.decl.Body) {
			continue
		}
		scanWrites(fi.pkg, fi.decl.Body, r.desc, firstParamOf(fi))
	}

	// Accesses outside callback context. Callback-root literals are callback
	// context even though they sit syntactically inside an installer function
	// whose own body is not; skip their subtrees so the installer is not
	// mistaken for an outside reader of purely callback-confined state.
	rootLits := map[*ast.FuncLit]bool{}
	for _, lr := range ctx.lits {
		rootLits[lr.lit] = true
	}
	for _, lr := range parLits {
		rootLits[lr.lit] = true // par job bodies are concurrent context, not outside readers
	}
	type access struct {
		pos token.Position
		fn  *types.Func
	}
	globalReads := map[*types.Var]access{}
	fieldReads := map[*types.Var]access{}
	for _, fi := range m.order {
		if _, in := ctx.funcs[fi.obj]; in || fi.decl.Body == nil {
			continue
		}
		if parFns[fi.obj] || usesLock(fi.pkg.Info, fi.decl.Body) {
			continue
		}
		info := fi.pkg.Info
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && rootLits[fl] {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			v = v.Origin()
			if v.IsField() {
				// Cross-package field reads only, and only from simulation
				// packages: same-package accessors are the intended
				// happens-after interface, and cmd/bench tooling reads
				// results strictly after Run returns.
				if _, written := fieldWrites[v]; written && v.Pkg() != nil && v.Pkg().Path() != fi.pkg.Path && isSimPackage(fi.pkg.Path) {
					if cur, ok := fieldReads[v]; !ok || before(m.fset.Position(id.Pos()), cur.pos) {
						fieldReads[v] = access{m.fset.Position(id.Pos()), fi.obj}
					}
				}
			} else if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				if _, written := globalWrites[v]; written {
					if cur, ok := globalReads[v]; !ok || before(m.fset.Position(id.Pos()), cur.pos) {
						globalReads[v] = access{m.fset.Position(id.Pos()), fi.obj}
					}
				}
			}
			return true
		})
	}

	var out []finding
	emit := func(v *types.Var, writes []site, rd access, what string) {
		sort.Slice(writes, func(i, j int) bool { return writes[i].pos < writes[j].pos })
		w := writes[0]
		out = append(out, finding{
			pos:  m.fset.Position(w.pos),
			rule: "sharedstate",
			msg: fmt.Sprintf("%s %s is written from engine-callback context (%s) and accessed outside it by %s (%s:%d) without synchronization; "+
				"shared state blocks the parallel engine — confine it to the callback side or guard it",
				what, v.Name(), w.desc, funcDisplayName(rd.fn), shortFile(rd.pos.Filename), rd.pos.Line),
		})
	}
	vars := make([]*types.Var, 0, len(globalWrites))
	for v := range globalWrites {
		if _, ok := globalReads[v]; ok {
			vars = append(vars, v)
		}
	}
	sortVars(vars)
	for _, v := range vars {
		emit(v, globalWrites[v], globalReads[v], "package-level variable")
	}
	vars = vars[:0]
	for v := range fieldWrites {
		if _, ok := fieldReads[v]; ok {
			vars = append(vars, v)
		}
	}
	sortVars(vars)
	for _, v := range vars {
		emit(v, fieldWrites[v], fieldReads[v], "field")
	}
	return out
}

func sortVars(vars []*types.Var) {
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
}

func before(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Offset < b.Offset
}

// ctxSet is the engine-callback reachability closure.
type ctxSet struct {
	funcs map[*types.Func]string // reachable function → root description
	lits  []callbackRoot         // literal roots (their bodies are context too)
}

// callbackContext closes the callback roots over the static call graph.
func callbackContext(m *module) *ctxSet {
	ctx := &ctxSet{funcs: map[*types.Func]string{}}
	var queue []*types.Func
	add := func(fn *types.Func, desc string) {
		if _, ok := ctx.funcs[fn]; ok {
			return
		}
		ctx.funcs[fn] = desc
		queue = append(queue, fn)
	}
	for _, r := range m.callbackRoots {
		if r.par {
			continue // par jobs are scanned shallowly by runSharedstate, not closed over
		}
		if r.fn != nil {
			add(r.fn, r.desc)
			continue
		}
		ctx.lits = append(ctx.lits, r)
		// Calls inside the literal enter callback context too.
		info := r.pkg.Info
		ast.Inspect(r.lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := m.staticCallee(info, call); callee != nil {
					add(callee, r.desc)
				}
			}
			return true
		})
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fi := m.funcs[fn]
		if fi == nil {
			continue
		}
		desc := ctx.funcs[fn]
		for _, cs := range fi.callees {
			add(cs.callee, desc)
		}
		// Interface-dispatched calls (graph environments, elements) stay in
		// callback context too.
		for _, callee := range fi.ifaceCallees {
			add(callee, desc)
		}
	}
	return ctx
}

// writtenVar resolves the variable (local, global or field) an lvalue writes
// to, looking through parens and indexing.
func writtenVar(info *types.Info, lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		return obj
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return writtenVar(info, x.X)
	case *ast.StarExpr:
		return writtenVar(info, x.X)
	}
	return nil
}

// writesLocalValue reports whether a field-write lvalue goes through a local
// variable of value (non-pointer) type — a write to a stack copy, which is
// not shared state (dst.Lo |= x on a local struct value).
func writesLocalValue(info *types.Info, lhs ast.Expr) bool {
	x := ast.Unparen(lhs)
	for {
		switch cur := x.(type) {
		case *ast.SelectorExpr:
			x = ast.Unparen(cur.X)
		case *ast.IndexExpr:
			x = ast.Unparen(cur.X)
		case *ast.Ident:
			obj := info.Uses[cur]
			if obj == nil {
				obj = info.Defs[cur]
			}
			v, ok := obj.(*types.Var)
			if !ok || !isLocalVar(v) {
				return false
			}
			_, isPtr := v.Type().Underlying().(*types.Pointer)
			return !isPtr
		default:
			return false
		}
		// A pointer anywhere on the path means the write lands on the pointee.
		if t := info.TypeOf(x); t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				return false
			}
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				return false
			}
		}
	}
}

// isSlotIndexedWrite reports whether lhs is an index expression whose index is
// the par job's slot parameter (results[slot] = v). The runner guarantees each
// job owns a distinct slot, so these writes are the sanctioned result channel.
func isSlotIndexedWrite(info *types.Info, lhs ast.Expr, slot *types.Var) bool {
	if slot == nil {
		return false
	}
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	return ok && v.Origin() == slot.Origin()
}

// firstParamOf resolves a named par job's slot parameter from its signature.
func firstParamOf(fi *funcInfo) *types.Var {
	sig, ok := fi.obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return nil
	}
	return sig.Params().At(0)
}

// usesLock reports whether a body takes a sync.Mutex / sync.RWMutex lock.
func usesLock(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		for _, typ := range [2]string{"Mutex", "RWMutex"} {
			for _, meth := range [2]string{"Lock", "RLock"} {
				if isMethodOn(s, "sync", typ, meth) {
					found = true
				}
			}
		}
		return true
	})
	return found
}
