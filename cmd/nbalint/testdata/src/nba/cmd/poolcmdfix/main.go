// Package poolcmdfix is an nbalint test fixture: MustGet is allowed in cmd/
// startup paths, so nothing here may be flagged.
package poolcmdfix

import "nba/internal/mempool"

func setup() *int {
	p := mempool.New[int]("fixture", 8, nil)
	return p.MustGet()
}
