// Package wallclockok is an nbalint test fixture: it is internal but NOT a
// simulation package, so wall-clock use is out of the nondeterminism rule's
// scope and nothing here may be flagged.
package wallclockok

import "time"

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
