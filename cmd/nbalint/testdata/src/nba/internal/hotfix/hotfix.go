// Package hotfix exercises the hotalloc rule: allocation constructs inside
// //nba:hotpath-annotated functions. Identical constructs in unannotated
// functions are the negative cases.
package hotfix

import "fmt"

type ring struct {
	data []int
	cb   func()
}

// grow appends into a struct field on a hot path.
//
//nba:hotpath
func grow(r *ring, v int) {
	r.data = append(r.data, v) // want hotalloc
}

// coldGrow is the same construct without the annotation: not flagged.
func coldGrow(r *ring, v int) {
	r.data = append(r.data, v)
}

// allowedGrow documents amortised growth with the escape hatch.
//
//nba:hotpath
func allowedGrow(r *ring, v int) {
	r.data = append(r.data, v) //nbalint:allow hotalloc fixture: growth amortises over the run
}

// makeScratch allocates a fresh slice per call.
//
//nba:hotpath
func makeScratch(n int) []int {
	return make([]int, n) // want hotalloc
}

// newRing returns a fresh composite literal per call.
//
//nba:hotpath
func newRing() *ring {
	return &ring{} // want hotalloc
}

// storeClosure stores a capturing function literal into a field.
//
//nba:hotpath
func storeClosure(r *ring, v int) {
	r.cb = func() { r.data[0] = v } // want hotalloc
}

type clock struct{}

func (clock) tick() {}

// methodValue returns a method value, which allocates a closure.
//
//nba:hotpath
func methodValue(c clock) func() {
	return c.tick // want hotalloc
}

// stringify converts []byte to string, copying the bytes.
//
//nba:hotpath
func stringify(bs []byte) string {
	return string(bs) // want hotalloc
}

func sink(v any) any { return v }

// box passes a non-pointer value to an interface parameter.
//
//nba:hotpath
func box(v int) any {
	return sink(v) // want hotalloc
}

// guarded shows the panic-argument exemption: the failing path may allocate
// its message.
//
//nba:hotpath
func guarded(i int) int {
	if i < 0 {
		panic(fmt.Sprintf("hotfix: negative index %d", i))
	}
	return i
}
