// Package printfix is an nbalint test fixture for the printban rule.
package printfix

import (
	"fmt"
	"os"
)

func noisy(n int) {
	fmt.Println("hello")  // want printban
	fmt.Printf("%d\n", n) // want printban
	fmt.Print(n)          // want printban
	println("builtin")    // want printban
	print(n)              // want printban
}

func quiet(n int) string {
	fmt.Fprintf(os.Stderr, "fprintf is fine: %d\n", n)
	return fmt.Sprintf("%d", n)
}

func annotated() {
	fmt.Println("allowed") //nbalint:allow printban fixture exercising suppression
}
