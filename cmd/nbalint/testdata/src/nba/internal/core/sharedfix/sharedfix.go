// Package sharedfix exercises the sharedstate rule: state written from
// simtime.Engine callback context and read outside it. The package path
// mimics a simulation package (field reads are only flagged for sim-package
// readers).
package sharedfix

import (
	"sync"

	"nba/internal/simtime"
)

// counter is written by an engine callback and read by Snapshot, which can
// run concurrently once the engine goes parallel.
var counter int

func arm(eng *simtime.Engine) {
	eng.After(simtime.Millisecond, func() {
		counter++ // want sharedstate
	})
}

// Snapshot reads the callback-written counter outside callback context.
func Snapshot() int { return counter }

// Mutex-guarded state is exempt on both sides.
var (
	mu      sync.Mutex
	guarded int
)

func armGuarded(eng *simtime.Engine) {
	eng.After(simtime.Millisecond, func() {
		mu.Lock()
		guarded++
		mu.Unlock()
	})
}

// SnapshotGuarded reads under the same lock.
func SnapshotGuarded() int {
	mu.Lock()
	defer mu.Unlock()
	return guarded
}

// confined is only touched from callback context: no finding.
var confined int

func armConfined(eng *simtime.Engine) {
	eng.After(simtime.Millisecond, func() {
		confined++
		eng.After(simtime.Millisecond, func() {
			confined++
		})
	})
}

// documented shows the escape hatch for intentional happens-after reads.
var documented int

func armDocumented(eng *simtime.Engine) {
	eng.After(simtime.Millisecond, func() {
		documented++ //nbalint:allow sharedstate fixture: read strictly after Run returns
	})
}

// SnapshotDocumented is the post-run reader of the documented counter.
func SnapshotDocumented() int { return documented }
