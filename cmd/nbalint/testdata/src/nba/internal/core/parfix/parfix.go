// Package parfix exercises the sharedstate rule on internal/par job roots:
// a function dispatched via par.Run / par.Map / par.MapErr runs on a pool
// goroutine, so writes to shared state from a job body race with the other
// workers unless they follow the runner's slot-index discipline. The package
// path mimics a simulation package so outside readers are flagged.
package parfix

import "nba/internal/par"

// appended collects results through append — a classic shared-slice race:
// every worker mutates the same slice header concurrently.
var appended []int

func sweepAppend() {
	par.Run(4, 2, func(slot int) {
		appended = append(appended, slot*slot) // want sharedstate
	})
}

// Appended reads the raced slice outside job context.
func Appended() []int { return appended }

// slots is written only through the job's own slot index: each worker owns a
// distinct element, which is the runner's sanctioned result channel. Exempt.
var slots [4]int

func sweepSlots() {
	par.Run(len(slots), 2, func(slot int) {
		slots[slot] = slot * slot
	})
}

// Slots reads the slot-indexed results after Run returns.
func Slots() [4]int { return slots }

// namedJob is a named (non-literal) par job root: its first parameter is the
// slot, so the slot-indexed write stays exempt while the counter write is not.
var (
	named   [4]int
	counter int
)

func namedJob(i int) {
	named[i] = i
	counter++ // want sharedstate
}

func sweepNamed() {
	par.Run(len(named), 2, namedJob)
}

// Counter reads the raced counter outside job context.
func Counter() int { return counter }

// Named reads the per-slot results.
func Named() [4]int { return named }

// total shows the escape hatch for writes that are intentionally serialized
// elsewhere (here: workers == 1 dispatch is the serial fast path).
var total int

func sweepSerial() {
	par.Run(4, 1, func(slot int) {
		total += slot //nbalint:allow sharedstate fixture: dispatched with workers == 1, serial by construction
	})
}

// Total reads the serially accumulated sum.
func Total() int { return total }
