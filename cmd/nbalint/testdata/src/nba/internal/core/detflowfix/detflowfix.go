// Package detflowfix exercises the detflow rule: nondeterminism sources
// laundered through helpers, fields and map iteration into the trace digest.
// The package path mimics a simulation package; the sources live in
// nba/internal/detutil where the per-file nondeterminism rule does not look,
// so every finding here is one the old rule provably misses.
package detflowfix

import (
	"nba/internal/detutil"
	"nba/internal/simtime"
	"nba/internal/trace"
)

// emitStamp feeds a cross-package wall-clock value into the run digest.
func emitStamp(tr *trace.Tracer, now simtime.Time) {
	tr.Emit(now, trace.KindBatch, 0, "stamp", detutil.Stamp(), 0, 0, 0) // want detflow
}

// emitStashed feeds a wall-clock value laundered through a package-level
// variable in another package into the run digest.
func emitStashed(tr *trace.Tracer, now simtime.Time) {
	detutil.Record()
	tr.Emit(now, trace.KindBatch, 0, "stash", detutil.Last(), 0, 0, 0) // want detflow
}

// emitMapOrder feeds a value that depends on map iteration order into the
// run digest (the surviving value is whichever the runtime visits last).
func emitMapOrder(tr *trace.Tracer, now simtime.Time, m map[int]int64) {
	var last int64
	for _, v := range m { // want maprange
		last = v
	}
	tr.Emit(now, trace.KindBatch, 0, "order", last, 0, 0, 0) // want detflow
}

// emitAllowed shows the escape hatch: a justified directive suppresses the
// finding (and is counted by -audit-allows).
func emitAllowed(tr *trace.Tracer, now simtime.Time) {
	tr.Emit(now, trace.KindBatch, 0, "ok", detutil.Stamp(), 0, 0, 0) //nbalint:allow detflow fixture: documented nondeterministic diagnostic payload
}

// emitClean is the negative case: deterministic payloads are fine.
func emitClean(tr *trace.Tracer, now simtime.Time, pkts int64) {
	tr.Emit(now, trace.KindBatch, 0, "clean", pkts, 0, 0, 0)
}
