// Package nondetfix is an nbalint test fixture: it sits under a simulation
// package path, so every determinism sin here must be flagged.
package nondetfix

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	t := time.Now()           // want nondeterminism
	d := time.Since(t)        // want nondeterminism
	time.Sleep(time.Second)   // want nondeterminism
	<-time.After(time.Second) // want nondeterminism
	return d
}

func globalRand() int {
	n := rand.Intn(4)                  // want nondeterminism
	rand.Shuffle(n, func(i, j int) {}) // want nondeterminism
	return n
}

func seededRandIsFine() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}

func concurrency(c chan int) {
	go func() { c <- 1 }() // want nondeterminism
	select {               // want nondeterminism
	case <-c:
	default:
	}
}

func annotated() time.Time {
	return time.Now() //nbalint:allow nondeterminism fixture exercising suppression
}
