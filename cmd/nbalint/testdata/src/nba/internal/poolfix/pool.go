// Package poolfix is an nbalint test fixture for the mempoolerr rule.
package poolfix

import "nba/internal/mempool"

func use(p *mempool.Pool[int]) int {
	p.Get()         // want mempoolerr
	v, _ := p.Get() // want mempoolerr
	_ = v
	x := p.MustGet() // want mempoolerr
	_ = x
	y, err := p.Get()
	if err != nil {
		return 0
	}
	return *y
}

func annotated(p *mempool.Pool[int]) *int {
	return p.MustGet() //nbalint:allow mempoolerr fixture pool sized at startup
}
