// Package detutil is a helper package OUTSIDE the simulation prefixes: the
// per-file nondeterminism rule does not apply here, so nothing in this file
// carries a want marker. The wall-clock read below is only caught when
// detflow follows the value across the package boundary into a digest sink.
package detutil

import "time"

// Stamp launders wall-clock time through an innocent-looking helper.
func Stamp() int64 { return time.Now().UnixNano() }

// StashedStamp launders the same value through a package-level variable.
var lastStamp int64

// Record stores a wall-clock reading for later.
func Record() { lastStamp = time.Now().UnixNano() }

// Last returns the stored reading.
func Last() int64 { return lastStamp }
