// Package aliasflowfix exercises the aliasflow rule: pooled *packet.Packet
// values escaping through helper functions into long-lived storage. The
// per-file batchalias rule only sees escapes inside the function that
// obtained the packet; every positive here routes the packet through a
// helper first, so batchalias provably misses them. Findings anchor at the
// escape site (the store in the helper), not the pool access.
package aliasflowfix

import (
	"nba/internal/batch"
	"nba/internal/packet"
)

type stash struct{ last *packet.Packet }

// keep is the helper that performs the store; the escape is flagged here.
func (s *stash) keep(p *packet.Packet) {
	s.last = p // want aliasflow
}

// remember launders each pooled packet through the keep helper.
func remember(s *stash, b *batch.Batch) {
	b.ForEachLive(func(i int, p *packet.Packet) {
		s.keep(p)
	})
}

// send is the helper that publishes a packet on a channel another goroutine
// (or a later virtual-time context) may drain after the batch was reset.
func send(ch chan *packet.Packet, p *packet.Packet) {
	ch <- p // want aliasflow
}

// publish launders slot packets through the send helper.
func publish(ch chan *packet.Packet, b *batch.Batch) {
	for i := 0; i < b.Count(); i++ {
		send(ch, b.Packet(i))
	}
}

type copier struct{ payload []byte }

// keepCopy is the sanctioned pattern: copy the bytes, let the packet go.
func (c *copier) keepCopy(p *packet.Packet) {
	c.payload = append(c.payload[:0], p.Data()...)
}

// rememberCopy is the negative case — no packet pointer outlives the batch.
func rememberCopy(c *copier, b *batch.Batch) {
	b.ForEachLive(func(i int, p *packet.Packet) {
		c.keepCopy(p)
	})
}

type allowedStash struct{ current *packet.Packet }

// hold documents a single-iteration stash with the escape hatch.
func (s *allowedStash) hold(p *packet.Packet) {
	s.current = p //nbalint:allow aliasflow fixture: cleared before the batch is recycled
}

// rememberAllowed exercises the suppressed path.
func rememberAllowed(s *allowedStash, b *batch.Batch) {
	b.ForEachLive(func(i int, p *packet.Packet) {
		s.hold(p)
	})
}
