// Package aliasfix is an nbalint test fixture for the batchalias rule.
package aliasfix

import (
	"nba/internal/batch"
	"nba/internal/packet"
)

type keeper struct {
	last *packet.Packet
	ring [4]*packet.Packet
}

var global *packet.Packet

func (k *keeper) store(b *batch.Batch) {
	k.last = b.Packet(0) // want batchalias
	b.ForEachLive(func(i int, p *packet.Packet) {
		global = p // want batchalias
	})
	pkt := b.Packet(1)
	k.last = pkt    // want batchalias
	k.ring[0] = pkt // want batchalias
}

func localUseIsFine(b *batch.Batch) int {
	total := 0
	pkt := b.Packet(0)
	if pkt != nil {
		total += pkt.Length()
	}
	b.ForEachLive(func(i int, p *packet.Packet) {
		q := p
		total += q.Length()
	})
	return total
}

func (k *keeper) annotated(b *batch.Batch) {
	k.last = b.Packet(0) //nbalint:allow batchalias fixture exercising suppression
}
