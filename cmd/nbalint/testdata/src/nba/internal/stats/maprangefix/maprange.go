// Package maprangefix is an nbalint test fixture for the maprange rule.
package maprangefix

import "sort"

func unsorted(m map[string]int) int {
	sum := 0
	for _, v := range m { // want maprange
		sum += v
	}
	return sum
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectWithoutSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	return keys
}

func sliceRangeIsFine(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}

func annotated(m map[string]bool) int {
	n := 0
	//nbalint:allow maprange order-insensitive count in fixture
	for range m {
		n++
	}
	return n
}
