// Package directivefix is an nbalint test fixture for //nbalint:allow
// directive parsing: malformed directives are findings themselves, and a
// valid directive only reaches the same line or the line directly below.
package directivefix

func sameLine(m map[string]int) int {
	n := 0
	for range m { //nbalint:allow maprange same-line suppression
		n++
	}
	return n
}

func precedingLine(m map[string]int) int {
	n := 0
	//nbalint:allow maprange preceding-line suppression
	for range m {
		n++
	}
	return n
}

func tooFarAway(m map[string]int) int {
	n := 0
	//nbalint:allow maprange directive is two lines up so it must not apply

	for range m {
		n++
	}
	return n
}

//nbalint:allow nosuchrule this rule name does not exist

//nbalint:allow maprange

//nbalint:deny maprange unknown verb

func unannotated(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
