// Command nbalint is NBA's framework-specific static analyzer suite.
//
// The simulation's headline guarantee is determinism in virtual time: every
// figure must be exactly reproducible from a config and a seed. Nothing in
// the language enforces that, so nbalint does. It walks the module with
// go/parser + go/types (stdlib only; go/packages is unavailable offline)
// and applies five analyzers:
//
//	nondeterminism  wall-clock time, global math/rand, go statements and
//	                select in simulation packages
//	maprange        unordered iteration over maps in internal packages
//	batchalias      *packet.Packet values from Batch.Packet/ForEachLive
//	                escaping into struct fields or globals (use-after-Reset)
//	mempoolerr      discarded mempool.Pool.Get errors; MustGet outside cmd/
//	printban        fmt.Print* and builtin print/println in internal/
//
// Findings print as "file:line: [rule] message" and make the exit status
// non-zero. A finding can be suppressed with a justified directive on the
// same or the preceding line:
//
//	//nbalint:allow <rule> <reason>
//
// Malformed directives (unknown rule, missing reason) are always findings;
// with -audit-allows, directives that suppress nothing are flagged too.
//
// See DESIGN.md, section "Determinism contract & static enforcement".
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pass is the per-package context handed to each analyzer.
type pass struct {
	fset   *token.FileSet
	pkg    *lintPackage
	report func(pos token.Pos, rule, msg string)
}

// analyzer is one nbalint rule.
type analyzer struct {
	name    string
	doc     string
	applies func(pkgPath string) bool
	run     func(*pass)
}

// finding is one reported problem.
type finding struct {
	pos  token.Position
	rule string
	msg  string
}

// simPackagePrefixes are the packages that execute inside virtual time and
// therefore must be bit-for-bit deterministic (the nondeterminism rule).
var simPackagePrefixes = []string{
	"nba/internal/simtime",
	"nba/internal/core",
	"nba/internal/apps",
	"nba/internal/gpu",
	"nba/internal/lb",
	"nba/internal/netio",
	"nba/internal/trace",
	"nba/internal/fault",
	"nba/internal/invariant",
	"nba/internal/chaos",
	"nba/internal/overload",
}

func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

func isSimPackage(path string) bool {
	for _, p := range simPackagePrefixes {
		if hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}

func isInternalPackage(path string) bool { return hasPathPrefix(path, "nba/internal") }

func isCmdPackage(path string) bool { return hasPathPrefix(path, "nba/cmd") }

// analyzers is the rule registry, in reporting order.
var analyzers = []*analyzer{
	nondeterminismAnalyzer,
	maprangeAnalyzer,
	batchaliasAnalyzer,
	mempoolerrAnalyzer,
	printbanAnalyzer,
}

func knownRuleNames() map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.name] = true
	}
	return m
}

// runPackage applies every applicable analyzer to one package and returns
// the surviving (non-suppressed) findings. With auditAllows set, an
// //nbalint:allow directive that suppressed nothing is itself a finding —
// stale escapes outlive the code they excused and hide future regressions.
func runPackage(fset *token.FileSet, lp *lintPackage, auditAllows bool) []finding {
	var raw []finding
	report := func(pos token.Pos, rule, msg string) {
		raw = append(raw, finding{pos: fset.Position(pos), rule: rule, msg: msg})
	}
	known := knownRuleNames()
	dirs := map[string]*fileDirectives{} // filename → directives
	var directiveFindings []finding
	for _, f := range lp.Files {
		fd := parseDirectives(fset, f, known, func(pos token.Pos, rule, msg string) {
			directiveFindings = append(directiveFindings, finding{pos: fset.Position(pos), rule: rule, msg: msg})
		})
		dirs[fset.Position(f.Pos()).Filename] = fd
	}
	p := &pass{fset: fset, pkg: lp, report: report}
	for _, a := range analyzers {
		if a.applies(lp.Path) {
			a.run(p)
		}
	}
	out := directiveFindings
	for _, f := range raw {
		if fd := dirs[f.pos.Filename]; fd != nil && fd.allows(f.rule, f.pos.Line) {
			continue
		}
		out = append(out, f)
	}
	if auditAllows {
		for _, f := range lp.Files {
			fd := dirs[fset.Position(f.Pos()).Filename]
			if fd == nil {
				continue
			}
			for _, d := range fd.unused() {
				out = append(out, finding{
					pos:  fset.Position(d.pos),
					rule: "directive",
					msg:  fmt.Sprintf("//nbalint:allow %s suppresses nothing; remove the stale escape", d.rule),
				})
			}
		}
	}
	return out
}

// packageDirs expands a CLI pattern into package directories. Patterns are
// directory paths, optionally ending in "/...". Directories named testdata
// are skipped unless the walk starts inside one (so the fixtures themselves
// can be linted to demonstrate a failing run).
func packageDirs(pattern string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		recursive = true
		pattern = rest
	}
	if pattern == "" || pattern == "." {
		pattern = "."
	}
	root, err := filepath.Abs(pattern)
	if err != nil {
		return nil, err
	}
	if !recursive {
		if !hasGoFiles(root) {
			return nil, fmt.Errorf("no Go files in %s", pattern)
		}
		return []string{root}, nil
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// importPathFor maps a package directory to its import path. Directories
// under a testdata/src fixture root use the path relative to that root so
// rule applicability (which keys off package paths) works on fixtures too.
func importPathFor(dir, moduleRoot, modulePath string) (string, error) {
	if i := strings.Index(dir, string(filepath.Separator)+filepath.Join("testdata", "src")+string(filepath.Separator)); i >= 0 {
		rel := dir[i+len(string(filepath.Separator)+filepath.Join("testdata", "src"))+1:]
		return filepath.ToSlash(rel), nil
	}
	rel, err := filepath.Rel(moduleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, moduleRoot)
	}
	return modulePath + "/" + filepath.ToSlash(rel), nil
}

// fixtureRootFor returns the testdata/src root containing dir, if any.
func fixtureRootFor(dir string) (string, bool) {
	marker := string(filepath.Separator) + filepath.Join("testdata", "src")
	if i := strings.Index(dir, marker+string(filepath.Separator)); i >= 0 {
		return dir[:i+len(marker)], true
	}
	return "", false
}

func main() {
	auditAllows := flag.Bool("audit-allows", false,
		"also flag //nbalint:allow directives that suppress no finding")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleRoot, err := findModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbalint:", err)
		os.Exit(2)
	}
	modulePath, err := readModulePath(moduleRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbalint:", err)
		os.Exit(2)
	}

	var dirs []string
	for _, p := range patterns {
		d, err := packageDirs(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbalint:", err)
			os.Exit(2)
		}
		dirs = append(dirs, d...)
	}

	// Any fixture roots seen in the patterns become import-resolution roots.
	var extraRoots []string
	seenRoot := map[string]bool{}
	for _, d := range dirs {
		if root, ok := fixtureRootFor(d); ok && !seenRoot[root] {
			seenRoot[root] = true
			extraRoots = append(extraRoots, root)
		}
	}

	l := newLoader(moduleRoot, modulePath, extraRoots...)
	var all []finding
	loadFailed := false
	for _, dir := range dirs {
		path, err := importPathFor(dir, moduleRoot, modulePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbalint:", err)
			loadFailed = true
			continue
		}
		lp, err := l.load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbalint:", err)
			loadFailed = true
			continue
		}
		all = append(all, runPackage(l.fset, lp, *auditAllows)...)
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.rule < b.rule
	})
	cwd, _ := os.Getwd()
	for _, f := range all {
		name := f.pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.pos.Line, f.rule, f.msg)
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(all) > 0:
		os.Exit(1)
	}
}

// --- shared type helpers used by several analyzers ---

// namedOrigin returns the origin named type behind t, unwrapping pointers,
// aliases and generic instantiations.
func namedOrigin(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	t = types.Unalias(t)
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}

// isMethodOn reports whether sel is a selection of the named method on the
// named type defined in pkgPath.
func isMethodOn(sel *types.Selection, pkgPath, typeName, method string) bool {
	if sel == nil || sel.Kind() != types.MethodVal {
		return false
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Name() != method {
		return false
	}
	n := namedOrigin(sel.Recv())
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// pkgNameOf resolves the package an identifier refers to when it names an
// import (e.g. the "time" in time.Now), or "" otherwise.
func pkgNameOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
