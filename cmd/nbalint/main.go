// Command nbalint is NBA's framework-specific static analyzer suite.
//
// The simulation's headline guarantee is determinism in virtual time: every
// figure must be exactly reproducible from a config and a seed. Nothing in
// the language enforces that, so nbalint does. It walks the module with
// go/parser + go/types (stdlib only; go/packages is unavailable offline)
// and applies two kinds of analyzers.
//
// Per-file rules, applied package by package:
//
//	nondeterminism  wall-clock time, global math/rand, go statements and
//	                select in simulation packages
//	maprange        unordered iteration over maps in internal packages
//	batchalias      *packet.Packet values from Batch.Packet/ForEachLive
//	                escaping into struct fields or globals (use-after-Reset)
//	mempoolerr      discarded mempool.Pool.Get errors; MustGet outside cmd/
//	printban        fmt.Print* and builtin print/println in internal/
//
// Interprocedural rules, computed over the whole module via a static call
// graph and per-function dataflow summaries (see module.go / flow.go):
//
//	detflow      nondeterminism sources laundered through call chains,
//	             fields or globals into trace digest / hash sinks, with the
//	             full source→sink path in the finding
//	aliasflow    pooled *packet.Packet escaping through helper functions
//	             into fields, globals or channels
//	hotalloc     allocation constructs in //nba:hotpath-annotated functions
//	sharedstate  state written from simtime.Engine callback context and
//	             read outside it without synchronization
//
// Findings print as "file:line: [rule] message" (or as JSON with
// -format json) and make the exit status non-zero. A finding can be
// suppressed with a justified directive on the same or the preceding line:
//
//	//nbalint:allow <rule> <reason>
//
// Malformed directives (unknown rule, missing reason) are always findings;
// with -audit-allows, directives that suppress nothing are flagged too and
// per-rule allow counts are reported. -timing prints per-rule wall clock to
// stderr; the type-checked module is shared across all rules.
//
// See DESIGN.md, sections "Determinism contract & static enforcement" and
// "Static analysis: interprocedural rules & annotations".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// pass is the per-package context handed to each per-file analyzer.
type pass struct {
	fset   *token.FileSet
	pkg    *lintPackage
	report func(pos token.Pos, rule, msg string)
}

// analyzer is one per-file nbalint rule.
type analyzer struct {
	name    string
	doc     string
	applies func(pkgPath string) bool
	run     func(*pass)
}

// modAnalyzer is one whole-module interprocedural rule. It sees every loaded
// package at once (targets and their module-local imports); findings outside
// the target packages are filtered by the driver.
type modAnalyzer struct {
	name string
	doc  string
	run  func(*module) []finding
}

// finding is one reported problem. path, when set, is the source→sink trail
// of a dataflow finding.
type finding struct {
	pos  token.Position
	rule string
	msg  string
	path []flowStep
}

// simPackagePrefixes are the packages that execute inside virtual time and
// therefore must be bit-for-bit deterministic (the nondeterminism rule).
var simPackagePrefixes = []string{
	"nba/internal/simtime",
	"nba/internal/core",
	"nba/internal/apps",
	"nba/internal/gpu",
	"nba/internal/lb",
	"nba/internal/netio",
	"nba/internal/trace",
	"nba/internal/fault",
	"nba/internal/invariant",
	"nba/internal/chaos",
	"nba/internal/overload",
	// reconfig plans script the control plane inside virtual time; a
	// nondeterministic plan would fork the epoch timeline between replays.
	"nba/internal/reconfig",
	// sched's WRR rounds order every worker's RX polling, so any
	// nondeterminism there skews every tenant's digest.
	"nba/internal/sched",
	// par is the audited bridge between virtual time and OS threads: its own
	// goroutines carry an allow directive, and its jobs are sharedstate roots
	// (see parDispatchRoots) so undisciplined writes from pool jobs are
	// findings.
	"nba/internal/par",
	// integrity's sentinel comparator runs on every sampled completion; its
	// sampling stream is part of the run identity, so nondeterminism or
	// hot-path allocation there corrupts replays.
	"nba/internal/integrity",
}

func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

func isSimPackage(path string) bool {
	for _, p := range simPackagePrefixes {
		if hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}

func isInternalPackage(path string) bool { return hasPathPrefix(path, "nba/internal") }

func isCmdPackage(path string) bool { return hasPathPrefix(path, "nba/cmd") }

// analyzers is the per-file rule registry, in reporting order.
var analyzers = []*analyzer{
	nondeterminismAnalyzer,
	maprangeAnalyzer,
	batchaliasAnalyzer,
	mempoolerrAnalyzer,
	printbanAnalyzer,
}

// modAnalyzers is the interprocedural rule registry.
var modAnalyzers = []*modAnalyzer{
	detflowAnalyzer,
	aliasflowAnalyzer,
	hotallocAnalyzer,
	sharedstateAnalyzer,
}

func knownRuleNames() map[string]bool {
	m := make(map[string]bool, len(analyzers)+len(modAnalyzers))
	for _, a := range analyzers {
		m[a.name] = true
	}
	for _, a := range modAnalyzers {
		m[a.name] = true
	}
	return m
}

// ruleOrder is every rule name in registry order (for timing output).
func ruleOrder() []string {
	var out []string
	for _, a := range analyzers {
		out = append(out, a.name)
	}
	for _, a := range modAnalyzers {
		out = append(out, a.name)
	}
	return out
}

// renderPath formats a source→sink trail for a text finding.
func renderPath(path []flowStep) string {
	parts := make([]string, len(path))
	for i, s := range path {
		parts[i] = s.String()
	}
	return strings.Join(parts, " -> ")
}

// allowCount is the -audit-allows accounting for one rule.
type allowCount struct {
	Used  int `json:"used"`
	Stale int `json:"stale"`
}

// lintResult is everything one lint run produced.
type lintResult struct {
	findings []finding
	allows   map[string]*allowCount
	timings  map[string]time.Duration
}

// lintPackages runs every rule over the target packages. Per-file rules run
// package by package; interprocedural rules run once over the whole loaded
// module (the loader cache holds targets plus their module-local imports) and
// their findings are filtered to files of target packages. Directives are
// applied globally so a dataflow finding anchored in another target package
// still honors that file's //nbalint:allow lines.
func lintPackages(l *loader, targets []*lintPackage, auditAllows bool) *lintResult {
	fset := l.fset
	known := knownRuleNames()

	seen := map[string]bool{}
	var uniq []*lintPackage
	for _, lp := range targets {
		if !seen[lp.Path] {
			seen[lp.Path] = true
			uniq = append(uniq, lp)
		}
	}

	dirs := map[string]*fileDirectives{} // filename → directives
	targetFiles := map[string]bool{}
	var fileNames []string
	var directiveFindings []finding
	for _, lp := range uniq {
		for _, f := range lp.Files {
			name := fset.Position(f.Pos()).Filename
			targetFiles[name] = true
			fileNames = append(fileNames, name)
			dirs[name] = parseDirectives(fset, f, known, func(pos token.Pos, rule, msg string) {
				directiveFindings = append(directiveFindings, finding{pos: fset.Position(pos), rule: rule, msg: msg})
			})
		}
	}
	sort.Strings(fileNames)

	timings := map[string]time.Duration{}
	var raw []finding
	for _, a := range analyzers {
		start := time.Now()
		for _, lp := range uniq {
			if !a.applies(lp.Path) {
				continue
			}
			p := &pass{fset: fset, pkg: lp, report: func(pos token.Pos, rule, msg string) {
				raw = append(raw, finding{pos: fset.Position(pos), rule: rule, msg: msg})
			}}
			a.run(p)
		}
		timings[a.name] += time.Since(start)
	}

	m := newModule(l)
	for _, a := range modAnalyzers {
		start := time.Now()
		for _, f := range a.run(m) {
			if targetFiles[f.pos.Filename] {
				raw = append(raw, f)
			}
		}
		timings[a.name] += time.Since(start)
	}

	out := directiveFindings
	for _, f := range raw {
		if fd := dirs[f.pos.Filename]; fd != nil && fd.allows(f.rule, f.pos.Line) {
			continue
		}
		out = append(out, f)
	}

	allows := map[string]*allowCount{}
	countFor := func(rule string) *allowCount {
		c := allows[rule]
		if c == nil {
			c = &allowCount{}
			allows[rule] = c
		}
		return c
	}
	for _, name := range fileNames {
		fd := dirs[name]
		if fd == nil {
			continue
		}
		stale := fd.unused()
		staleAt := map[token.Pos]bool{}
		for _, d := range stale {
			staleAt[d.pos] = true
			countFor(d.rule).Stale++
			if auditAllows {
				out = append(out, finding{
					pos:  fset.Position(d.pos),
					rule: "directive",
					msg:  fmt.Sprintf("//nbalint:allow %s suppresses nothing; remove the stale escape", d.rule),
				})
			}
		}
		for _, ds := range fd.byLine {
			for _, d := range ds {
				if !staleAt[d.pos] {
					countFor(d.rule).Used++
				}
			}
		}
	}

	return &lintResult{findings: out, allows: allows, timings: timings}
}

// packageDirs expands a CLI pattern into package directories. Patterns are
// directory paths, optionally ending in "/...". Directories named testdata
// are skipped unless the walk starts inside one (so the fixtures themselves
// can be linted to demonstrate a failing run).
func packageDirs(pattern string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		recursive = true
		pattern = rest
	}
	if pattern == "" || pattern == "." {
		pattern = "."
	}
	root, err := filepath.Abs(pattern)
	if err != nil {
		return nil, err
	}
	if !recursive {
		if !hasGoFiles(root) {
			return nil, fmt.Errorf("no Go files in %s", pattern)
		}
		return []string{root}, nil
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// importPathFor maps a package directory to its import path. Directories
// under a testdata/src fixture root use the path relative to that root so
// rule applicability (which keys off package paths) works on fixtures too.
func importPathFor(dir, moduleRoot, modulePath string) (string, error) {
	if i := strings.Index(dir, string(filepath.Separator)+filepath.Join("testdata", "src")+string(filepath.Separator)); i >= 0 {
		rel := dir[i+len(string(filepath.Separator)+filepath.Join("testdata", "src"))+1:]
		return filepath.ToSlash(rel), nil
	}
	rel, err := filepath.Rel(moduleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, moduleRoot)
	}
	return modulePath + "/" + filepath.ToSlash(rel), nil
}

// fixtureRootFor returns the testdata/src root containing dir, if any.
func fixtureRootFor(dir string) (string, bool) {
	marker := string(filepath.Separator) + filepath.Join("testdata", "src")
	if i := strings.Index(dir, marker+string(filepath.Separator)); i >= 0 {
		return dir[:i+len(marker)], true
	}
	return "", false
}

// jsonStep is one trail hop in -format json output.
type jsonStep struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Desc string `json:"desc"`
}

// jsonFinding is one finding in -format json output.
type jsonFinding struct {
	Rule    string     `json:"rule"`
	File    string     `json:"file"`
	Line    int        `json:"line"`
	Col     int        `json:"col"`
	Message string     `json:"message"`
	Path    []jsonStep `json:"path,omitempty"`
}

// jsonOutput is the -format json document.
type jsonOutput struct {
	Findings []jsonFinding         `json:"findings"`
	Allows   map[string]allowCount `json:"allows"`
	TimingMs map[string]float64    `json:"timing_ms"`
}

func relName(cwd, name string) string {
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

func main() {
	auditAllows := flag.Bool("audit-allows", false,
		"also flag //nbalint:allow directives that suppress no finding, and report per-rule allow counts")
	format := flag.String("format", "text", "output format: text or json")
	timing := flag.Bool("timing", false, "print per-rule wall clock to stderr")
	budget := flag.Duration("budget", 0,
		"fail if any single rule exceeds this wall-clock budget (0 disables); "+
			"a tripwire for accidental summary-computation blowups, not a benchmark")
	flag.Parse()
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "nbalint: unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleRoot, err := findModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbalint:", err)
		os.Exit(2)
	}
	modulePath, err := readModulePath(moduleRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbalint:", err)
		os.Exit(2)
	}

	var dirs []string
	for _, p := range patterns {
		d, err := packageDirs(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbalint:", err)
			os.Exit(2)
		}
		dirs = append(dirs, d...)
	}

	// Any fixture roots seen in the patterns become import-resolution roots.
	var extraRoots []string
	seenRoot := map[string]bool{}
	for _, d := range dirs {
		if root, ok := fixtureRootFor(d); ok && !seenRoot[root] {
			seenRoot[root] = true
			extraRoots = append(extraRoots, root)
		}
	}

	l := newLoader(moduleRoot, modulePath, extraRoots...)
	var targets []*lintPackage
	loadFailed := false
	for _, dir := range dirs {
		path, err := importPathFor(dir, moduleRoot, modulePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbalint:", err)
			loadFailed = true
			continue
		}
		lp, err := l.load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbalint:", err)
			loadFailed = true
			continue
		}
		targets = append(targets, lp)
	}

	res := lintPackages(l, targets, *auditAllows)
	all := res.findings
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.rule != b.rule {
			return a.rule < b.rule
		}
		return a.msg < b.msg
	})

	cwd, _ := os.Getwd()
	if *timing {
		for _, rule := range ruleOrder() {
			fmt.Fprintf(os.Stderr, "nbalint: timing %-15s %7.1fms\n",
				rule, float64(res.timings[rule].Microseconds())/1000)
		}
	}
	overBudget := false
	if *budget > 0 {
		for _, rule := range ruleOrder() {
			if d := res.timings[rule]; d > *budget {
				overBudget = true
				fmt.Fprintf(os.Stderr, "nbalint: rule %s took %v, over the %v budget\n",
					rule, d.Round(time.Millisecond), *budget)
			}
		}
	}
	switch *format {
	case "json":
		doc := jsonOutput{
			Findings: []jsonFinding{},
			Allows:   map[string]allowCount{},
			TimingMs: map[string]float64{},
		}
		for _, f := range all {
			jf := jsonFinding{
				Rule:    f.rule,
				File:    relName(cwd, f.pos.Filename),
				Line:    f.pos.Line,
				Col:     f.pos.Column,
				Message: f.msg,
			}
			for _, s := range f.path {
				jf.Path = append(jf.Path, jsonStep{File: relName(cwd, s.pos.Filename), Line: s.pos.Line, Desc: s.desc})
			}
			doc.Findings = append(doc.Findings, jf)
		}
		for rule, c := range res.allows {
			doc.Allows[rule] = *c
		}
		for rule, d := range res.timings {
			doc.TimingMs[rule] = float64(d.Microseconds()) / 1000
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "nbalint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range all {
			fmt.Printf("%s:%d: [%s] %s\n", relName(cwd, f.pos.Filename), f.pos.Line, f.rule, f.msg)
		}
		if *auditAllows {
			rules := make([]string, 0, len(res.allows))
			for r := range res.allows {
				rules = append(rules, r)
			}
			sort.Strings(rules)
			for _, r := range rules {
				c := res.allows[r]
				fmt.Fprintf(os.Stderr, "nbalint: allows %-15s used=%d stale=%d\n", r, c.Used, c.Stale)
			}
		}
	}
	switch {
	case loadFailed:
		os.Exit(2)
	case len(all) > 0, overBudget:
		os.Exit(1)
	}
}

// --- shared type helpers used by several analyzers ---

// namedOrigin returns the origin named type behind t, unwrapping pointers,
// aliases and generic instantiations.
func namedOrigin(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	t = types.Unalias(t)
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}

// isMethodOn reports whether sel is a selection of the named method on the
// named type defined in pkgPath.
func isMethodOn(sel *types.Selection, pkgPath, typeName, method string) bool {
	if sel == nil || sel.Kind() != types.MethodVal {
		return false
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Name() != method {
		return false
	}
	n := namedOrigin(sel.Recv())
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// pkgNameOf resolves the package an identifier refers to when it names an
// import (e.g. the "time" in time.Now), or "" otherwise.
func pkgNameOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
