// Module-wide analysis state shared by the interprocedural rules.
//
// The per-file rules of the original nbalint see one package at a time; the
// dataflow rules (detflow, aliasflow, sharedstate) and the annotation-driven
// hotalloc rule need the whole module: a registry of every function
// declaration, a static call graph over them, the set of //nba:hotpath
// annotations, and the set of functions that run in simtime.Engine callback
// context. All of that is computed once per invocation and shared across
// rules, so adding rules does not re-type-check the tree.
package main

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"go/types"
)

const (
	simtimePkgPath = "nba/internal/simtime"
	tracePkgPath   = "nba/internal/trace"
	packetPkgPath  = "nba/internal/packet"
	parPkgPath     = "nba/internal/par"
)

// hotpathDirective is the annotation marking a function as part of the
// steady-state data path: hotalloc lints every allocation construct in its
// body. The annotation lives in the function's doc comment.
const hotpathDirective = "//nba:hotpath"

// funcInfo is one function or method declaration in the module.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *lintPackage

	// callees are the statically resolvable module-local calls in the body
	// (including calls inside function literals), in source order.
	callees []callSite

	// ifaceCallees are the possible targets of interface-method calls in the
	// body, resolved by class-hierarchy approximation (every module method
	// implementing the called interface). Used for callback reachability
	// only — taint flows stay on static edges for precision.
	ifaceCallees []*types.Func

	// hotpath records a //nba:hotpath annotation on the declaration.
	hotpath bool

	// flows holds per-rule interprocedural summaries, keyed by rule name.
	flows map[string]*funcFlow
}

// callSite is one resolved static call.
type callSite struct {
	pos    token.Pos
	callee *types.Func // origin (generic, not instantiation)
}

// module is the whole-module analysis universe.
type module struct {
	fset *token.FileSet
	// pkgs is every loaded package, sorted by import path for deterministic
	// iteration.
	pkgs []*lintPackage
	// funcs maps a function object (origin) to its declaration info.
	funcs map[*types.Func]*funcInfo
	// order lists funcs in deterministic (position) order.
	order []*funcInfo
	// callbackRoots are functions passed to simtime.Engine.At/After or
	// installed as Engine.OnFire, plus a synthetic entry per function literal
	// used that way; they seed sharedstate reachability.
	callbackRoots []callbackRoot

	// methodsByName indexes module methods by name for interface-call
	// resolution.
	methodsByName map[string][]*funcInfo

	// funcValueSources maps a variable or field of function type to the
	// module functions ever assigned to it. A callback registered through
	// such a variable (eng.After(d, w.stepFn)) roots all of them.
	funcValueSources map[*types.Var][]*types.Func
}

// callbackRoot is one entry point into engine-callback context, or — when
// par is set — one job function handed to the parallel runner.
type callbackRoot struct {
	pos token.Pos
	// fn is the named function passed as a callback (nil for literals).
	fn *types.Func
	// lit is the function literal passed inline (nil for named functions).
	lit *ast.FuncLit
	// pkg is the package the registration appears in.
	pkg *lintPackage
	// desc describes the registration for finding messages.
	desc string
	// par marks a par.Run/Map/MapErr job root. Par roots are scanned
	// shallowly (the job body only, no transitive call-graph closure): a
	// chaos job calls the whole simulator, and closing over it would drown
	// the sharedstate rule in the entire single-threaded hot path. The
	// discipline par enforces is local by design — a job may write only its
	// own slot — so the body is where violations appear.
	par bool
	// slot is the job's slot-index parameter (par roots with a literal job
	// only; named jobs resolve it from their declaration).
	slot *types.Var
}

// newModule builds the analysis universe over every package the loader has
// type-checked (targets and their transitive module-local imports).
func newModule(l *loader) *module {
	m := &module{fset: l.fset, funcs: map[*types.Func]*funcInfo{}}
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		m.pkgs = append(m.pkgs, l.pkgs[p])
	}
	for _, lp := range m.pkgs {
		for _, f := range lp.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := lp.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{obj: obj, decl: fd, pkg: lp, flows: map[string]*funcFlow{}}
				fi.hotpath = hasHotpathAnnotation(fd)
				m.funcs[obj] = fi
				m.order = append(m.order, fi)
			}
		}
	}
	sort.Slice(m.order, func(i, j int) bool { return m.order[i].decl.Pos() < m.order[j].decl.Pos() })
	m.methodsByName = map[string][]*funcInfo{}
	for _, fi := range m.order {
		if sig, ok := fi.obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			m.methodsByName[fi.obj.Name()] = append(m.methodsByName[fi.obj.Name()], fi)
		}
	}
	for _, fi := range m.order {
		m.resolveCalls(fi)
	}
	m.collectFuncValueSources()
	m.findCallbackRoots()
	return m
}

// collectFuncValueSources records, for every function-typed variable or
// field, the module functions assigned to it anywhere in the module.
func (m *module) collectFuncValueSources() {
	m.funcValueSources = map[*types.Var][]*types.Func{}
	for _, fi := range m.order {
		if fi.decl.Body == nil {
			continue
		}
		info := fi.pkg.Info
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				fn := m.funcValueOf(info, as.Rhs[i])
				if fn == nil {
					continue
				}
				var v *types.Var
				switch x := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					v, _ = info.Defs[x].(*types.Var)
					if v == nil {
						v, _ = info.Uses[x].(*types.Var)
					}
				case *ast.SelectorExpr:
					v, _ = info.Uses[x.Sel].(*types.Var)
				}
				if v != nil {
					v = v.Origin()
					m.funcValueSources[v] = append(m.funcValueSources[v], fn)
				}
			}
			return true
		})
	}
}

// funcValueOf resolves an expression used as a function value (method value
// or function identifier) to a module function.
func (m *module) funcValueOf(info *types.Info, e ast.Expr) *types.Func {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.MethodVal {
			obj = s.Obj()
		} else {
			obj = info.Uses[x.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	fn = fn.Origin()
	if _, known := m.funcs[fn]; !known {
		return nil
	}
	return fn
}

// ifaceCallees resolves an interface-method call to every module method
// implementing it (class-hierarchy approximation).
func (m *module) resolveIfaceCall(info *types.Info, call *ast.CallExpr) []*types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	iface, ok := s.Recv().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, cand := range m.methodsByName[sel.Sel.Name] {
		sig, ok := cand.obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if types.Implements(sig.Recv().Type(), iface) ||
			types.Implements(types.NewPointer(sig.Recv().Type()), iface) {
			out = append(out, cand.obj)
		}
	}
	return out
}

// hasHotpathAnnotation reports whether the declaration's doc comment carries
// a //nba:hotpath directive.
func hasHotpathAnnotation(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := c.Text
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// staticCallee resolves a call expression to the module-local function it
// invokes, or nil for dynamic calls (interface methods, func values),
// builtins, conversions and out-of-module targets.
func (m *module) staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified function
		}
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	fn = fn.Origin()
	if _, known := m.funcs[fn]; !known {
		return nil
	}
	return fn
}

// resolveCalls records fi's statically resolvable module-local call sites.
func (m *module) resolveCalls(fi *funcInfo) {
	if fi.decl.Body == nil {
		return
	}
	info := fi.pkg.Info
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := m.staticCallee(info, call); callee != nil {
			fi.callees = append(fi.callees, callSite{pos: call.Pos(), callee: callee})
		} else {
			fi.ifaceCallees = append(fi.ifaceCallees, m.resolveIfaceCall(info, call)...)
		}
		return true
	})
}

// isEngineSchedule reports whether the call schedules an engine callback
// (Engine.At / Engine.After) and returns the callback argument.
func isEngineSchedule(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 2 {
		return nil, false
	}
	s := info.Selections[sel]
	if isMethodOn(s, simtimePkgPath, "Engine", "At") || isMethodOn(s, simtimePkgPath, "Engine", "After") {
		return call.Args[1], true
	}
	return nil, false
}

// isOnFireInstall reports whether the assignment installs an Engine.OnFire
// hook and returns the installed expression.
func isOnFireInstall(info *types.Info, as *ast.AssignStmt) (ast.Expr, bool) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "OnFire" {
			continue
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			continue
		}
		n := namedOrigin(info.TypeOf(sel.X))
		if n == nil {
			continue
		}
		obj := n.Obj()
		if obj.Name() == "Engine" && obj.Pkg() != nil && obj.Pkg().Path() == simtimePkgPath {
			return as.Rhs[i], true
		}
	}
	return nil, false
}

// isParDispatch reports whether the call hands jobs to the parallel runner
// (par.Run / par.Map / par.MapErr) and returns the job-function argument.
func isParDispatch(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 3 {
		return nil, false
	}
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // explicit instantiation Map[T]
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch x := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[x] // call from inside package par itself
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	default:
		return nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != parPkgPath {
		return nil, false
	}
	switch fn.Name() {
	case "Run", "Map", "MapErr":
		return call.Args[2], true
	}
	return nil, false
}

// slotParamOf returns the first parameter of a function literal — a par
// job's slot index.
func slotParamOf(info *types.Info, lit *ast.FuncLit) *types.Var {
	if lit.Type.Params == nil || len(lit.Type.Params.List) == 0 {
		return nil
	}
	names := lit.Type.Params.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := info.Defs[names[0]].(*types.Var)
	return v
}

// findCallbackRoots scans every function for engine callback registrations
// and par job dispatches.
func (m *module) findCallbackRoots() {
	for _, fi := range m.order {
		if fi.decl.Body == nil {
			continue
		}
		info := fi.pkg.Info
		addRoot := func(pos token.Pos, arg ast.Expr, how string, par bool) {
			arg = ast.Unparen(arg)
			if lit, ok := arg.(*ast.FuncLit); ok {
				r := callbackRoot{
					pos: pos, lit: lit, pkg: fi.pkg, par: par,
					desc: how + " with a function literal in " + fi.obj.Name(),
				}
				if par {
					r.slot = slotParamOf(info, lit)
				}
				m.callbackRoots = append(m.callbackRoots, r)
				return
			}
			if fn := m.funcValueOf(info, arg); fn != nil {
				m.callbackRoots = append(m.callbackRoots, callbackRoot{
					pos: pos, fn: fn, pkg: fi.pkg, par: par,
					desc: how + " in " + fi.obj.Name(),
				})
				return
			}
			// A func-typed variable or field: root everything ever assigned
			// to it (eng.After(d, w.stepFn) where stepFn = w.step).
			var v *types.Var
			switch x := arg.(type) {
			case *ast.Ident:
				v, _ = info.Uses[x].(*types.Var)
			case *ast.SelectorExpr:
				v, _ = info.Uses[x.Sel].(*types.Var)
			}
			if v != nil {
				for _, fn := range m.funcValueSources[v.Origin()] {
					m.callbackRoots = append(m.callbackRoots, callbackRoot{
						pos: pos, fn: fn, pkg: fi.pkg, par: par,
						desc: how + " via " + v.Name() + " in " + fi.obj.Name(),
					})
				}
			}
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if arg, ok := isEngineSchedule(info, n); ok {
					addRoot(n.Pos(), arg, "scheduled on the engine", false)
				} else if arg, ok := isParDispatch(info, n); ok {
					addRoot(n.Pos(), arg, "dispatched as a par job", true)
				}
			case *ast.AssignStmt:
				if rhs, ok := isOnFireInstall(info, n); ok {
					addRoot(n.Pos(), rhs, "installed as Engine.OnFire", false)
				}
			}
			return true
		})
	}
}

// funcDisplayName renders a function for messages: pkg-qualified, with a
// receiver for methods, e.g. "(*trace.Tracer).Emit" or "core.newWorker".
func funcDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	pkgName := ""
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		pkgName = p[strings.LastIndex(p, "/")+1:] + "."
	}
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if n, ok := types.Unalias(t).(*types.Named); ok {
			return "(" + ptr + pkgName + n.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkgName + fn.Name()
}
