package main

import (
	"go/ast"
	"go/types"
)

// printbanAnalyzer forbids direct terminal output from internal packages.
// All user-visible output flows through internal/stats and the cmd/ layers,
// which know about report formats and quiet modes; a stray fmt.Println in a
// hot element both corrupts reports and costs cycles.
var printbanAnalyzer = &analyzer{
	name:    "printban",
	doc:     "forbid fmt.Print* and builtin print/println in internal packages",
	applies: isInternalPackage,
	run:     runPrintban,
}

var bannedFmtFuncs = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

func runPrintban(p *pass) {
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if pkgNameOf(info, fun.X) == "fmt" && bannedFmtFuncs[fun.Sel.Name] {
					p.report(call.Pos(), "printban",
						"fmt."+fun.Sel.Name+" writes to stdout from an internal package; report through internal/stats or return data to the cmd layer")
				}
			case *ast.Ident:
				if b, ok := info.Uses[fun].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					p.report(call.Pos(), "printban",
						"builtin "+b.Name()+" writes to stderr; report through internal/stats or return data to the cmd layer")
				}
			}
			return true
		})
	}
}
