package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testLoader builds a loader rooted at the real module with testdata/src as
// an extra import root, so fixtures can both mimic framework package paths
// and import the real framework packages.
func testLoader(t *testing.T) *loader {
	t.Helper()
	moduleRoot, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	modulePath, err := readModulePath(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return newLoader(moduleRoot, modulePath, filepath.Join(cwd, "testdata", "src"))
}

// loadTargets loads the given import paths as lint targets.
func loadTargets(t *testing.T, l *loader, pkgs ...string) []*lintPackage {
	t.Helper()
	var targets []*lintPackage
	for _, pkg := range pkgs {
		lp, err := l.load(pkg)
		if err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
		targets = append(targets, lp)
	}
	return targets
}

func findingKey(f finding) string {
	return fmt.Sprintf("%s:%d %s", filepath.Base(f.pos.Filename), f.pos.Line, f.rule)
}

// wantFindings scans fixture directories for "// want <rule>..." markers and
// returns the expected multiset of "file:line rule" keys.
func wantFindings(t *testing.T, dirs ...string) map[string]int {
	t.Helper()
	want := map[string]int{}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				_, marker, ok := strings.Cut(line, "// want ")
				if !ok {
					continue
				}
				for _, rule := range strings.Fields(marker) {
					want[fmt.Sprintf("%s:%d %s", e.Name(), i+1, rule)]++
				}
			}
		}
	}
	return want
}

// TestAnalyzers runs every rule over each fixture case (per-file rules on
// the target packages, interprocedural rules over the whole module filtered
// to the targets) and compares the findings against the fixtures' want
// markers. Cases with multiple packages exercise cross-package flows: the
// detflow case launders wall-clock values through nba/internal/detutil,
// where the per-file nondeterminism rule does not apply, and the finding
// anchors at the sink in the simulation-path package.
func TestAnalyzers(t *testing.T) {
	l := testLoader(t)
	tests := []struct {
		name string
		pkgs []string
	}{
		{"nondeterminism", []string{"nba/internal/core/nondetfix"}},
		{"nondeterminism-scope", []string{"nba/internal/wallclockok"}},
		{"maprange", []string{"nba/internal/stats/maprangefix"}},
		{"batchalias", []string{"nba/internal/apps/aliasfix"}},
		{"mempoolerr", []string{"nba/internal/poolfix"}},
		{"mempoolerr-cmd-exempt", []string{"nba/cmd/poolcmdfix"}},
		{"printban", []string{"nba/internal/printfix"}},
		{"detflow-cross-package", []string{"nba/internal/detutil", "nba/internal/core/detflowfix"}},
		{"aliasflow", []string{"nba/internal/apps/aliasflowfix"}},
		{"hotalloc", []string{"nba/internal/hotfix"}},
		{"sharedstate", []string{"nba/internal/core/sharedfix"}},
		{"sharedstate-par", []string{"nba/internal/core/parfix"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			targets := loadTargets(t, l, tt.pkgs...)
			res := lintPackages(l, targets, false)
			got := map[string]int{}
			for _, f := range res.findings {
				got[findingKey(f)]++
			}
			var dirs []string
			for _, lp := range targets {
				dirs = append(dirs, lp.Dir)
			}
			want := wantFindings(t, dirs...)
			for k, n := range want {
				if got[k] != n {
					t.Errorf("want %d finding(s) %q, got %d", n, k, got[k])
				}
			}
			for k, n := range got {
				if want[k] == 0 {
					t.Errorf("unexpected finding %q (x%d)", k, n)
				}
			}
		})
	}
}

// TestFixtureAllowsAreUsed checks that the fixtures' //nbalint:allow lines
// suppress real findings: the -audit-allows accounting must count them used,
// not stale (a stale directive would mean the negative fixture case is
// vacuous).
func TestFixtureAllowsAreUsed(t *testing.T) {
	l := testLoader(t)
	targets := loadTargets(t, l,
		"nba/internal/detutil", "nba/internal/core/detflowfix",
		"nba/internal/apps/aliasflowfix", "nba/internal/hotfix",
		"nba/internal/core/sharedfix", "nba/internal/core/parfix")
	res := lintPackages(l, targets, true)
	for _, rule := range []string{"detflow", "aliasflow", "hotalloc", "sharedstate"} {
		c := res.allows[rule]
		if c == nil || c.Used == 0 {
			t.Errorf("rule %s: no used //nbalint:allow directive in its fixture", rule)
			continue
		}
		if c.Stale != 0 {
			t.Errorf("rule %s: %d stale directive(s) in its fixture", rule, c.Stale)
		}
	}
}

// TestRealTreeClean is the self-lint regression gate: the repository itself
// must lint clean under every rule, including the stale-directive audit. A
// failure here means a change introduced a violation (fix it) or an
// unjustified //nbalint:allow (remove it).
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	moduleRoot, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := packageDirs(moduleRoot + "/...")
	if err != nil {
		t.Fatal(err)
	}
	l := testLoader(t)
	var pkgs []string
	for _, dir := range dirs {
		path, err := importPathFor(dir, l.moduleRoot, l.modulePath)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, path)
	}
	targets := loadTargets(t, l, pkgs...)
	res := lintPackages(l, targets, true)
	for _, f := range res.findings {
		t.Errorf("real tree not lint-clean: %s:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.rule, f.msg)
	}
}

// TestRealTreeApplicability pins the package-path scoping rules the
// analyzers key off.
func TestRealTreeApplicability(t *testing.T) {
	tests := []struct {
		path string
		sim  bool
		intl bool
		cmd  bool
	}{
		{"nba/internal/simtime", true, true, false},
		{"nba/internal/core", true, true, false},
		{"nba/internal/apps/ipsec", true, true, false},
		{"nba/internal/gpu", true, true, false},
		{"nba/internal/lb", true, true, false},
		{"nba/internal/netio", true, true, false},
		{"nba/internal/fault", true, true, false},
		{"nba/internal/invariant", true, true, false},
		{"nba/internal/chaos", true, true, false},
		{"nba/internal/par", true, true, false},
		{"nba/internal/stats", false, true, false},
		{"nba/internal/corelike", false, true, false},
		{"nba/cmd/nba", false, false, true},
		{"nba", false, false, false},
		{"nba/examples/router", false, false, false},
	}
	for _, tt := range tests {
		if got := isSimPackage(tt.path); got != tt.sim {
			t.Errorf("isSimPackage(%q) = %v, want %v", tt.path, got, tt.sim)
		}
		if got := isInternalPackage(tt.path); got != tt.intl {
			t.Errorf("isInternalPackage(%q) = %v, want %v", tt.path, got, tt.intl)
		}
		if got := isCmdPackage(tt.path); got != tt.cmd {
			t.Errorf("isCmdPackage(%q) = %v, want %v", tt.path, got, tt.cmd)
		}
	}
}

// TestPackageDirs checks that default walks skip testdata while explicit
// walks into testdata do not.
func TestPackageDirs(t *testing.T) {
	moduleRoot, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := packageDirs(moduleRoot + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no package dirs found under module root")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("default walk must skip testdata, found %s", d)
		}
	}
	fixDirs, err := packageDirs(filepath.Join(moduleRoot, "cmd", "nbalint", "testdata") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixDirs) == 0 {
		t.Error("explicit testdata walk found no fixture packages")
	}
}

// TestFixtureTreeFails mirrors the CLI acceptance requirement: linting the
// fixture tree must produce findings (non-zero exit in the CLI).
func TestFixtureTreeFails(t *testing.T) {
	l := testLoader(t)
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := packageDirs(filepath.Join(cwd, "testdata") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []string
	for _, dir := range dirs {
		path, err := importPathFor(dir, l.moduleRoot, l.modulePath)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, path)
	}
	targets := loadTargets(t, l, pkgs...)
	if res := lintPackages(l, targets, false); len(res.findings) == 0 {
		t.Fatal("fixture tree produced no findings; the CLI would exit 0 on it")
	}
}
