package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testLoader builds a loader rooted at the real module with testdata/src as
// an extra import root, so fixtures can both mimic framework package paths
// and import the real framework packages.
func testLoader(t *testing.T) *loader {
	t.Helper()
	moduleRoot, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	modulePath, err := readModulePath(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return newLoader(moduleRoot, modulePath, filepath.Join(cwd, "testdata", "src"))
}

func findingKey(f finding) string {
	return fmt.Sprintf("%s:%d %s", filepath.Base(f.pos.Filename), f.pos.Line, f.rule)
}

// wantFindings scans a fixture directory for "// want <rule>..." markers and
// returns the expected multiset of "file:line rule" keys.
func wantFindings(t *testing.T, dir string) map[string]int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d %s", e.Name(), i+1, rule)]++
			}
		}
	}
	return want
}

// TestAnalyzers runs every analyzer fixture package and compares the
// reported findings against the fixtures' want markers.
func TestAnalyzers(t *testing.T) {
	l := testLoader(t)
	tests := []struct {
		name string
		pkg  string
	}{
		{"nondeterminism", "nba/internal/core/nondetfix"},
		{"nondeterminism-scope", "nba/internal/wallclockok"},
		{"maprange", "nba/internal/stats/maprangefix"},
		{"batchalias", "nba/internal/apps/aliasfix"},
		{"mempoolerr", "nba/internal/poolfix"},
		{"mempoolerr-cmd-exempt", "nba/cmd/poolcmdfix"},
		{"printban", "nba/internal/printfix"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lp, err := l.load(tt.pkg)
			if err != nil {
				t.Fatalf("loading %s: %v", tt.pkg, err)
			}
			got := map[string]int{}
			for _, f := range runPackage(l.fset, lp, false) {
				got[findingKey(f)]++
			}
			want := wantFindings(t, lp.Dir)
			for k, n := range want {
				if got[k] != n {
					t.Errorf("want %d finding(s) %q, got %d", n, k, got[k])
				}
			}
			for k, n := range got {
				if want[k] == 0 {
					t.Errorf("unexpected finding %q (x%d)", k, n)
				}
			}
		})
	}
}

// TestRealTreeApplicability pins the package-path scoping rules the
// analyzers key off.
func TestRealTreeApplicability(t *testing.T) {
	tests := []struct {
		path string
		sim  bool
		intl bool
		cmd  bool
	}{
		{"nba/internal/simtime", true, true, false},
		{"nba/internal/core", true, true, false},
		{"nba/internal/apps/ipsec", true, true, false},
		{"nba/internal/gpu", true, true, false},
		{"nba/internal/lb", true, true, false},
		{"nba/internal/netio", true, true, false},
		{"nba/internal/fault", true, true, false},
		{"nba/internal/invariant", true, true, false},
		{"nba/internal/chaos", true, true, false},
		{"nba/internal/stats", false, true, false},
		{"nba/internal/corelike", false, true, false},
		{"nba/cmd/nba", false, false, true},
		{"nba", false, false, false},
		{"nba/examples/router", false, false, false},
	}
	for _, tt := range tests {
		if got := isSimPackage(tt.path); got != tt.sim {
			t.Errorf("isSimPackage(%q) = %v, want %v", tt.path, got, tt.sim)
		}
		if got := isInternalPackage(tt.path); got != tt.intl {
			t.Errorf("isInternalPackage(%q) = %v, want %v", tt.path, got, tt.intl)
		}
		if got := isCmdPackage(tt.path); got != tt.cmd {
			t.Errorf("isCmdPackage(%q) = %v, want %v", tt.path, got, tt.cmd)
		}
	}
}

// TestPackageDirs checks that default walks skip testdata while explicit
// walks into testdata do not.
func TestPackageDirs(t *testing.T) {
	moduleRoot, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := packageDirs(moduleRoot + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no package dirs found under module root")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("default walk must skip testdata, found %s", d)
		}
	}
	fixDirs, err := packageDirs(filepath.Join(moduleRoot, "cmd", "nbalint", "testdata") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixDirs) == 0 {
		t.Error("explicit testdata walk found no fixture packages")
	}
}

// TestFixtureTreeFails mirrors the CLI acceptance requirement: linting the
// fixture tree must produce findings (non-zero exit in the CLI).
func TestFixtureTreeFails(t *testing.T) {
	l := testLoader(t)
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := packageDirs(filepath.Join(cwd, "testdata") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, dir := range dirs {
		path, err := importPathFor(dir, l.moduleRoot, l.modulePath)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		total += len(runPackage(l.fset, lp, false))
	}
	if total == 0 {
		t.Fatal("fixture tree produced no findings; the CLI would exit 0 on it")
	}
}
