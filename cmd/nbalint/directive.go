// Parsing of //nbalint:allow escape-hatch directives.
//
// A directive has the form
//
//	//nbalint:allow <rule> <reason...>
//
// and suppresses findings of <rule> on the same source line (trailing
// comment) or on the line immediately following (comment on its own line).
// A reason is mandatory: unexplained suppressions are themselves findings.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const directivePrefix = "nbalint:"

// directive is one parsed //nbalint:allow comment.
type directive struct {
	rule   string
	reason string
	pos    token.Pos
	line   int
	used   bool // suppressed at least one finding this run
}

// fileDirectives indexes the valid allow directives of one file by line.
type fileDirectives struct {
	byLine map[int][]directive
}

// parseDirectives scans a file's comments for nbalint directives. Malformed
// directives (unknown verb, unknown rule, missing reason) are reported
// through report as findings of the pseudo-rule "directive", which cannot
// itself be suppressed.
func parseDirectives(fset *token.FileSet, f *ast.File, knownRules map[string]bool, report func(pos token.Pos, rule, msg string)) *fileDirectives {
	fd := &fileDirectives{byLine: map[int][]directive{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
			if !ok {
				continue
			}
			verb, rest, _ := strings.Cut(strings.TrimSpace(text), " ")
			if verb != "allow" {
				report(c.Pos(), "directive", "unknown nbalint directive //nbalint:"+verb+" (only \"allow\" is supported)")
				continue
			}
			rule, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
			if rule == "" {
				report(c.Pos(), "directive", "//nbalint:allow needs a rule name and a reason")
				continue
			}
			if !knownRules[rule] {
				report(c.Pos(), "directive", fmt.Sprintf("//nbalint:allow names unknown rule %q", rule))
				continue
			}
			if strings.TrimSpace(reason) == "" {
				report(c.Pos(), "directive", "//nbalint:allow "+rule+" needs a reason (why is this safe?)")
				continue
			}
			line := fset.Position(c.Pos()).Line
			fd.byLine[line] = append(fd.byLine[line], directive{
				rule:   rule,
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
				line:   line,
			})
		}
	}
	return fd
}

// allows reports whether a finding of rule at the given line is suppressed:
// a matching directive must sit on the same line or the one directly above.
// Matching directives are marked used for the -audit-allows pass.
func (fd *fileDirectives) allows(rule string, line int) bool {
	hit := false
	for _, l := range [2]int{line, line - 1} {
		ds := fd.byLine[l]
		for i := range ds {
			if ds[i].rule == rule {
				ds[i].used = true
				hit = true
			}
		}
	}
	return hit
}

// unused returns the directives that suppressed nothing, in line order.
func (fd *fileDirectives) unused() []directive {
	var out []directive
	for _, ds := range fd.byLine {
		for _, d := range ds {
			if !d.used {
				out = append(out, d)
			}
		}
	}
	// Deterministic order for reporting (map iteration above is unordered;
	// the caller sorts all findings by position anyway, but keep this stable
	// on its own too).
	sort.Slice(out, func(i, j int) bool { return out[i].line < out[j].line })
	return out
}
