package main

import (
	"go/ast"
	"go/types"
)

const batchPkgPath = "nba/internal/batch"

// batchaliasAnalyzer flags *packet.Packet values obtained from
// batch.Batch.Packet(i) or a ForEachLive callback being stored into a struct
// field or a package-level variable. Batches and packets are pooled: after
// the batch is Put back, Reset() clears the slots and the pointer dangles
// into memory the pool will hand to someone else — the Go analogue of
// use-after-free on DPDK mbufs. Elements that need per-flow state must copy
// the bytes they need, not retain the packet.
var batchaliasAnalyzer = &analyzer{
	name: "batchalias",
	doc:  "flag pooled *packet.Packet values escaping into fields or globals",
	applies: func(path string) bool {
		// The batch package itself owns the slot arrays.
		return path != batchPkgPath
	},
	run: runBatchalias,
}

func runBatchalias(p *pass) {
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBatchAlias(p, info, fd.Body)
		}
	}
}

// checkBatchAlias runs the per-function taint pass: seed taints from
// Batch.Packet results and ForEachLive callback parameters, propagate
// through simple local assignments, then flag stores of tainted values into
// struct fields or package-level variables.
func checkBatchAlias(p *pass, info *types.Info, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}

	// ForEachLive callback packet parameters are tainted at declaration.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isMethodOn(info.Selections[sel], batchPkgPath, "Batch", "ForEachLive") {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		lit, ok := call.Args[0].(*ast.FuncLit)
		if !ok || len(lit.Type.Params.List) != 2 {
			return true
		}
		for _, name := range lit.Type.Params.List[1].Names {
			if obj := info.Defs[name]; obj != nil {
				tainted[obj] = true
			}
		}
		return true
	})

	isTaintedExpr := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tainted[info.Uses[x]]
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				return isMethodOn(info.Selections[sel], batchPkgPath, "Batch", "Packet")
			}
		}
		return false
	}

	// Propagate taint through direct local assignments until stable. The
	// pass is flow-insensitive on purpose: retaining the pointer anywhere in
	// the function is already suspect once it reaches a field or global.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || !isTaintedExpr(as.Rhs[i]) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && isLocalVar(obj) && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Flag escaping stores.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) || !isTaintedExpr(as.Rhs[i]) {
				continue
			}
			if kind := escapeKind(info, lhs); kind != "" {
				p.report(as.Pos(), "batchalias",
					"storing a pooled *packet.Packet from Batch.Packet/ForEachLive into a "+kind+
						" aliases memory reclaimed on Reset(); copy the bytes you need instead")
			}
		}
		return true
	})
}

func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if pkg := v.Pkg(); pkg != nil && v.Parent() == pkg.Scope() {
		return false
	}
	return true
}

// escapeKind classifies an lvalue as a long-lived destination: "struct
// field" for selector stores (possibly through indexing), "package-level
// variable" for globals. Local destinations return "".
func escapeKind(info *types.Info, lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			return "struct field"
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if pkg := v.Pkg(); pkg != nil && v.Parent() == pkg.Scope() {
				return "package-level variable"
			}
		}
	case *ast.IndexExpr:
		// Indexed stores escape if the indexed container itself does
		// (s.pkts[i] = p, globalSlice[i] = p).
		return escapeKind(info, x.X)
	}
	return ""
}
