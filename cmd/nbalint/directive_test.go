package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const directiveFixture = "nba/internal/directivefix"

// fixtureLines reads the directive fixture and returns its lines (1-based
// access via lineWhere).
func fixtureLines(t *testing.T) []string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(cwd, "testdata", "src", filepath.FromSlash(directiveFixture), "directive.go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(string(data), "\n")
}

// lineWhere returns the 1-based line number of the first line containing
// substr, offset by delta.
func lineWhere(t *testing.T, lines []string, substr string, delta int) int {
	t.Helper()
	for i, l := range lines {
		if strings.Contains(l, substr) {
			return i + 1 + delta
		}
	}
	t.Fatalf("fixture has no line containing %q", substr)
	return 0
}

// TestDirectives exercises //nbalint:allow parsing end to end: placement
// (same line, preceding line, too far away), unknown rule, missing reason,
// and unknown verb.
func TestDirectives(t *testing.T) {
	l := testLoader(t)
	lp, err := l.load(directiveFixture)
	if err != nil {
		t.Fatal(err)
	}
	findings := lintPackages(l, []*lintPackage{lp}, false).findings
	lines := fixtureLines(t)

	at := func(rule string, line int) bool {
		for _, f := range findings {
			if f.rule == rule && f.pos.Line == line {
				return true
			}
		}
		return false
	}

	// Suppression placement.
	sameLine := lineWhere(t, lines, "same-line suppression", 0)
	if at("maprange", sameLine) {
		t.Errorf("same-line directive at line %d did not suppress the finding", sameLine)
	}
	preceding := lineWhere(t, lines, "preceding-line suppression", +1)
	if at("maprange", preceding) {
		t.Errorf("preceding-line directive did not suppress the finding at line %d", preceding)
	}
	tooFar := lineWhere(t, lines, "two lines up", +2)
	if !at("maprange", tooFar) {
		t.Errorf("directive two lines above must NOT suppress the finding at line %d", tooFar)
	}
	unannotated := lineWhere(t, lines, "func unannotated", +2)
	if !at("maprange", unannotated) {
		t.Errorf("missing expected maprange finding at unannotated loop, line %d", unannotated)
	}

	// Malformed directives are findings of the pseudo-rule "directive".
	unknownRule := lineWhere(t, lines, "nosuchrule", 0)
	if !at("directive", unknownRule) {
		t.Errorf("unknown rule: no directive finding at line %d", unknownRule)
	}
	assertMsg(t, findings, unknownRule, "unknown rule")

	missingReason := exactLine(t, lines, "//nbalint:allow maprange")
	if !at("directive", missingReason) {
		t.Errorf("missing reason: no directive finding at line %d", missingReason)
	}
	assertMsg(t, findings, missingReason, "needs a reason")

	unknownVerb := lineWhere(t, lines, "nbalint:deny", 0)
	if !at("directive", unknownVerb) {
		t.Errorf("unknown verb: no directive finding at line %d", unknownVerb)
	}
	assertMsg(t, findings, unknownVerb, "unknown nbalint directive")
}

// TestAuditAllows covers the -audit-allows pass: a well-formed directive
// that suppresses nothing (here: placed two lines above its target, so out
// of range) is flagged as stale, while directives that did suppress a
// finding are not.
func TestAuditAllows(t *testing.T) {
	l := testLoader(t)
	lp, err := l.load(directiveFixture)
	if err != nil {
		t.Fatal(err)
	}
	lines := fixtureLines(t)

	// Without the audit, the stale directive is silent.
	stale := lineWhere(t, lines, "two lines up so it must not apply", 0)
	for _, f := range lintPackages(l, []*lintPackage{lp}, false).findings {
		if f.pos.Line == stale && strings.Contains(f.msg, "suppresses nothing") {
			t.Fatal("unused allow reported without -audit-allows")
		}
	}

	findings := lintPackages(l, []*lintPackage{lp}, true).findings
	found := false
	for _, f := range findings {
		if !strings.Contains(f.msg, "suppresses nothing") {
			continue
		}
		switch f.pos.Line {
		case stale:
			found = true
		default:
			t.Errorf("used directive at line %d flagged as stale", f.pos.Line)
		}
	}
	if !found {
		t.Errorf("stale directive at line %d not flagged by the audit", stale)
	}
}

// exactLine returns the 1-based number of the line whose trimmed content
// equals want exactly.
func exactLine(t *testing.T, lines []string, want string) int {
	t.Helper()
	for i, l := range lines {
		if strings.TrimSpace(l) == want {
			return i + 1
		}
	}
	t.Fatalf("fixture has no exact line %q", want)
	return 0
}

func assertMsg(t *testing.T, findings []finding, line int, sub string) {
	t.Helper()
	for _, f := range findings {
		if f.pos.Line == line && strings.Contains(f.msg, sub) {
			return
		}
	}
	t.Errorf("no finding at line %d with message containing %q", line, sub)
}
