package main

import (
	"go/ast"
	"go/types"
)

// maprangeAnalyzer flags `for range` over map values anywhere under
// internal/. Map iteration order is randomized by the runtime, so any map
// range whose effects are order-sensitive (building a report line, picking
// the first error, appending to a slice) makes output differ between runs
// even when the simulation itself is deterministic.
//
// The canonical collect-then-sort idiom is recognised and allowed without a
// directive: a loop whose body only appends keys/values to slices,
// immediately followed by a sort call on one of those slices.
var maprangeAnalyzer = &analyzer{
	name:    "maprange",
	doc:     "flag unordered iteration over maps in internal packages",
	applies: isInternalPackage,
	run:     runMaprange,
}

func runMaprange(p *pass) {
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmts := stmtList(n)
			if stmts == nil {
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !isMapRange(info, rs) {
					continue
				}
				if isCollectThenSort(info, rs, stmts[i+1:]) {
					continue
				}
				p.report(rs.Pos(), "maprange",
					"iteration over a map is nondeterministically ordered; iterate sorted keys (see stats.SortedKeys) or annotate //nbalint:allow maprange <reason>")
			}
			return true
		})
	}
}

// stmtList returns the statement list a node holds, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isCollectThenSort reports whether the range loop only appends to local
// slices and one of those slices is sorted by the statement immediately
// following the loop.
func isCollectThenSort(info *types.Info, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	targets := map[types.Object]bool{}
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || info.Uses[fn] == nil || info.Uses[fn].Name() != "append" {
			return false
		}
		if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
			return false
		}
		if obj := rootObject(info, as.Lhs[0]); obj != nil {
			targets[obj] = true
		}
	}
	if len(targets) == 0 {
		return false
	}
	if len(rest) == 0 {
		return false
	}
	es, ok := rest[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch pkgNameOf(info, sel.X) {
	case "sort", "slices":
	default:
		return false
	}
	return targets[rootObject(info, call.Args[0])]
}

// rootObject resolves the base identifier of an lvalue-ish expression
// (x, x.f, x[i], *x) to its types.Object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
