// Interprocedural taint engine shared by detflow and aliasflow.
//
// The engine is summary-based: every function in the module gets a funcFlow
// summary — which results carry seed taint, which parameters flow to which
// results, and which parameters reach a sink inside the function (directly or
// through further calls). Summaries are computed to a fixed point over the
// static call graph, then a final report pass walks every function once and
// emits findings with the full source→sink trail.
//
// The intra-function transfer is deliberately flow-insensitive (like the
// original batchalias pass): a value is tainted if any assignment anywhere in
// the function taints it. Dynamic calls (interface methods, func values) do
// not propagate taint unless the spec opts into receiver/argument
// pass-through; this trades a little soundness for a usable signal, and the
// self-lint gate keeps the real tree at zero findings either way.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// flowStep is one hop of a source→sink trail.
type flowStep struct {
	pos   token.Position
	desc  string
	inter bool // the step crosses a function boundary
}

func (s flowStep) String() string {
	if !s.pos.IsValid() {
		return s.desc
	}
	return fmt.Sprintf("%s (%s:%d)", s.desc, shortFile(s.pos.Filename), s.pos.Line)
}

// trail is an immutable source-first step sequence.
type trail struct{ steps []flowStep }

const maxTrailSteps = 16

func (t *trail) extend(step flowStep) *trail {
	if len(t.steps) >= maxTrailSteps {
		return t
	}
	out := make([]flowStep, 0, len(t.steps)+1)
	out = append(out, t.steps...)
	out = append(out, step)
	return &trail{steps: out}
}

func (t *trail) join(rest []flowStep) *trail {
	out := t
	for _, s := range rest {
		out = out.extend(s)
	}
	return out
}

func (t *trail) crossesFunctions() bool {
	for _, s := range t.steps {
		if s.inter {
			return true
		}
	}
	return false
}

// tval is the taint of one value: the seed trails that reach it, plus the
// bitset of enclosing-function parameters it derives from.
type tval struct {
	seeds  []*trail
	params uint64
}

const maxSeedsPerValue = 2

func (v tval) empty() bool { return len(v.seeds) == 0 && v.params == 0 }

func mergeTval(a, b tval) tval {
	out := tval{params: a.params | b.params}
	out.seeds = append(out.seeds, a.seeds...)
	for _, t := range b.seeds {
		if len(out.seeds) >= maxSeedsPerValue {
			break
		}
		dup := false
		for _, have := range out.seeds {
			if len(have.steps) > 0 && len(t.steps) > 0 && have.steps[0].pos == t.steps[0].pos {
				dup = true
				break
			}
		}
		if !dup {
			out.seeds = append(out.seeds, t)
		}
	}
	return out
}

// covers reports whether a already carries everything b would add.
func (a tval) covers(b tval) bool {
	if b.params&^a.params != 0 {
		return false
	}
	for _, t := range b.seeds {
		found := false
		for _, have := range a.seeds {
			if len(have.steps) > 0 && len(t.steps) > 0 && have.steps[0].pos == t.steps[0].pos {
				found = true
				break
			}
		}
		if !found && len(a.seeds) < maxSeedsPerValue {
			return false
		}
	}
	return true
}

// funcFlow is one function's interprocedural summary for one rule.
type funcFlow struct {
	retTaint   map[int]*trail // result index → seed trail (ends with "returned by F")
	paramToRet map[int]uint64 // param index → bitset of result indices it flows to
	paramSink  map[int]*trail // param index → trail from entering F to a sink
}

func newFuncFlow() *funcFlow {
	return &funcFlow{retTaint: map[int]*trail{}, paramToRet: map[int]uint64{}, paramSink: map[int]*trail{}}
}

// flowSpec parameterizes the engine for one rule.
type flowSpec struct {
	name    string
	message string // base finding message

	// seedCall describes a call expression that originates taint ("" = not
	// a seed).
	seedCall func(p *lintPackage, call *ast.CallExpr) string
	// seedFuncLitParams returns identifiers of callback parameters seeded by
	// a call (e.g. the packet parameter of Batch.ForEachLive).
	seedFuncLitParams func(p *lintPackage, call *ast.CallExpr) ([]*ast.Ident, string)
	// seedMapRange seeds the key/value variables of range-over-map loops.
	seedMapRange bool
	// seedGoroutine seeds variables written from inside go-statement literals.
	seedGoroutine bool

	// sinkCall describes a call whose arguments are sinks ("" = not a sink).
	sinkCall func(p *lintPackage, call *ast.CallExpr) string
	// sinkStore classifies an lvalue as an escaping store ("" = none).
	sinkStore func(p *lintPackage, lhs ast.Expr) string
	// sendSink, when non-empty, makes channel sends of tainted values sinks.
	sendSink string

	// typeOK filters which static types carry taint (nil = all types).
	typeOK func(t types.Type) bool
	// skipPkg exempts packages from both summaries and findings (packages
	// that legitimately own the flagged storage, like mempool for packets).
	skipPkg func(path string) bool
	// trackFields/trackGlobals propagate seed taint through struct fields /
	// package-level variables module-wide (flow- and instance-insensitive).
	trackFields  bool
	trackGlobals bool
	// unknownCallPropagates makes dynamic and out-of-module calls pass
	// receiver/argument taint to their results (laundering through stdlib
	// helpers like time.Time.UnixNano or fmt.Sprintf).
	unknownCallPropagates bool
	// interOnly drops findings whose trail never crosses a function boundary
	// (those are the local rule's jurisdiction).
	interOnly bool
	// reportAtSink positions findings at the final sink step instead of the
	// call site in the currently analyzed function.
	reportAtSink bool
}

// flowFinding is one source→sink violation. The position is resolved so the
// caller can anchor it at either end of the trail.
type flowFinding struct {
	pos  token.Position
	path []flowStep
}

// shortFile trims a path to its last two segments for trail rendering.
func shortFile(name string) string {
	parts := strings.Split(filepath.ToSlash(name), "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// flowAnalysis runs one spec over the module.
type flowAnalysis struct {
	mod  *module
	spec *flowSpec

	fieldTaint  map[*types.Var]*trail
	globalTaint map[*types.Var]*trail

	dirty    bool
	findings []flowFinding
	seen     map[string]bool
}

// runFlow computes summaries to fixed point and returns the findings.
func runFlow(mod *module, spec *flowSpec) []flowFinding {
	fa := &flowAnalysis{
		mod:         mod,
		spec:        spec,
		fieldTaint:  map[*types.Var]*trail{},
		globalTaint: map[*types.Var]*trail{},
		seen:        map[string]bool{},
	}
	for round := 0; round < 50; round++ {
		fa.dirty = false
		for _, fi := range mod.order {
			if fi.decl.Body == nil {
				continue
			}
			if spec.skipPkg != nil && spec.skipPkg(fi.pkg.Path) {
				continue
			}
			fa.analyzeFunc(fi, false)
		}
		if !fa.dirty {
			break
		}
	}
	for _, fi := range mod.order {
		if fi.decl.Body == nil {
			continue
		}
		if spec.skipPkg != nil && spec.skipPkg(fi.pkg.Path) {
			continue
		}
		fa.analyzeFunc(fi, true)
	}
	return fa.findings
}

func (fa *flowAnalysis) flowOf(fi *funcInfo) *funcFlow {
	f := fi.flows[fa.spec.name]
	if f == nil {
		f = newFuncFlow()
		fi.flows[fa.spec.name] = f
	}
	return f
}

func (fa *flowAnalysis) position(pos token.Pos) token.Position {
	return fa.mod.fset.Position(pos)
}

func (fa *flowAnalysis) typeCarries(t types.Type) bool {
	if fa.spec.typeOK == nil {
		return true
	}
	return t != nil && fa.spec.typeOK(t)
}

func (fa *flowAnalysis) emit(pos token.Pos, t *trail) {
	if fa.spec.interOnly && !t.crossesFunctions() {
		return
	}
	anchor := fa.position(pos)
	if fa.spec.reportAtSink && len(t.steps) > 0 && t.steps[len(t.steps)-1].pos.IsValid() {
		anchor = t.steps[len(t.steps)-1].pos
	}
	key := fmt.Sprintf("%v|%d", anchor, len(t.steps))
	for _, s := range t.steps {
		key += "|" + s.String()
	}
	if fa.seen[key] {
		return
	}
	fa.seen[key] = true
	fa.findings = append(fa.findings, flowFinding{pos: anchor, path: t.steps})
}

// funcEval is the intra-function transfer state.
type funcEval struct {
	fa     *flowAnalysis
	fi     *funcInfo
	info   *types.Info
	flow   *funcFlow
	env    map[types.Object]tval
	params map[types.Object]int
	report bool
	// changed tracks env growth within the current pass.
	changed bool
}

// analyzeFunc runs the transfer for one function until its env stabilizes,
// updating summaries (and, in report mode, emitting findings).
func (fa *flowAnalysis) analyzeFunc(fi *funcInfo, report bool) {
	ev := &funcEval{
		fa:     fa,
		fi:     fi,
		info:   fi.pkg.Info,
		flow:   fa.flowOf(fi),
		env:    map[types.Object]tval{},
		params: map[types.Object]int{},
		report: report,
	}
	// Parameter markers: receiver (if any) is index 0.
	idx := 0
	sig, _ := fi.obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if fi.decl.Recv != nil && len(fi.decl.Recv.List) == 1 {
			for _, name := range fi.decl.Recv.List[0].Names {
				if obj := ev.info.Defs[name]; obj != nil && idx < 64 && fa.typeCarries(obj.Type()) {
					ev.params[obj] = idx
					ev.env[obj] = tval{params: 1 << idx}
				}
			}
		}
		idx++
	}
	if fi.decl.Type.Params != nil {
		for _, field := range fi.decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := ev.info.Defs[name]; obj != nil && idx < 64 && fa.typeCarries(obj.Type()) {
					ev.params[obj] = idx
					ev.env[obj] = tval{params: 1 << idx}
				}
				idx++
			}
		}
	}
	for pass := 0; pass < 20; pass++ {
		ev.changed = false
		// Findings fire only on the last pass of the report run, once env has
		// stabilized, so trails are complete.
		ev.walk(false)
		if !ev.changed {
			break
		}
	}
	if report {
		ev.walk(true)
	}
}

// bindObj merges a tval into an object's env entry.
func (ev *funcEval) bindObj(obj types.Object, v tval) {
	if obj == nil || v.empty() {
		return
	}
	if !ev.fa.typeCarries(obj.Type()) {
		return
	}
	cur := ev.env[obj]
	if cur.covers(v) {
		return
	}
	ev.env[obj] = mergeTval(cur, v)
	ev.changed = true
}

// seedTrail builds a fresh single-step trail.
func (ev *funcEval) seedTrail(pos token.Pos, desc string) *trail {
	return &trail{steps: []flowStep{{pos: ev.fa.position(pos), desc: desc}}}
}

// walk runs one pass over the body. With emit set, sink hits produce
// findings; otherwise they only update summaries.
func (ev *funcEval) walk(emit bool) {
	body := ev.fi.decl.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ev.assign(n, emit)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						ev.bindObj(ev.info.Defs[name], ev.taintOf(vs.Values[i]))
					}
				}
			}
		case *ast.RangeStmt:
			ev.rangeStmt(n)
		case *ast.GoStmt:
			ev.goStmt(n)
		case *ast.SendStmt:
			if ev.fa.spec.sendSink != "" {
				v := ev.taintOf(n.Value)
				ev.hitSink(v, flowStep{pos: ev.fa.position(n.Pos()), desc: ev.fa.spec.sendSink}, n.Pos(), emit)
			}
		case *ast.ReturnStmt:
			ev.returnStmt(n)
		case *ast.CallExpr:
			ev.evalCallEffects(n, emit)
		}
		return true
	})
}

// assign processes one assignment statement: env updates, field/global
// taint recording, and store-sink checks.
func (ev *funcEval) assign(as *ast.AssignStmt, emit bool) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment.
		rhs := ast.Unparen(as.Rhs[0])
		if call, ok := rhs.(*ast.CallExpr); ok {
			for i, lhs := range as.Lhs {
				ev.assignOne(as, lhs, ev.callTaint(call, i), emit)
			}
			return
		}
		// v, ok := m[k]  /  v, ok := x.(T)  /  v, ok := <-ch
		v := ev.taintOf(rhs)
		ev.assignOne(as, as.Lhs[0], v, emit)
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		v := ev.taintOf(as.Rhs[i])
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Compound assignment (+= etc.) keeps the old taint too.
			v = mergeTval(v, ev.taintOf(lhs))
		}
		ev.assignOne(as, lhs, v, emit)
	}
}

func (ev *funcEval) assignOne(as *ast.AssignStmt, lhs ast.Expr, v tval, emit bool) {
	spec := ev.fa.spec
	lhs = ast.Unparen(lhs)
	if spec.sinkStore != nil && !v.empty() {
		if kind := spec.sinkStore(ev.fi.pkg, lhs); kind != "" {
			ev.hitSink(v, flowStep{pos: ev.fa.position(as.Pos()), desc: "stored into a " + kind}, as.Pos(), emit)
		}
	}
	switch x := lhs.(type) {
	case *ast.Ident:
		obj := ev.info.Defs[x]
		if obj == nil {
			obj = ev.info.Uses[x]
		}
		if vr, ok := obj.(*types.Var); ok && spec.trackGlobals && vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
			ev.recordCarrier(ev.fa.globalTaint, vr.Origin(), v, "stored in package variable "+vr.Name(), as.Pos())
		}
		ev.bindObj(obj, v)
	case *ast.SelectorExpr:
		if spec.trackFields {
			if fv, ok := ev.info.Uses[x.Sel].(*types.Var); ok && fv.IsField() {
				ev.recordCarrier(ev.fa.fieldTaint, fv.Origin(), v, "stored in field "+fv.Name(), as.Pos())
			}
		}
	}
}

// recordCarrier taints a module-wide carrier (field or global) with a seed
// trail. Parameter-relative taint is not tracked through carriers.
func (ev *funcEval) recordCarrier(m map[*types.Var]*trail, v *types.Var, tv tval, desc string, pos token.Pos) {
	if len(tv.seeds) == 0 || m[v] != nil {
		return
	}
	m[v] = tv.seeds[0].extend(flowStep{pos: ev.fa.position(pos), desc: desc, inter: true})
	ev.fa.dirty = true
	ev.changed = true
}

// rangeStmt handles range loops: map-order seeding and container taint
// propagation to the iteration variables.
func (ev *funcEval) rangeStmt(rs *ast.RangeStmt) {
	t := ev.info.TypeOf(rs.X)
	if t == nil {
		return
	}
	_, isMap := t.Underlying().(*types.Map)
	contTaint := ev.taintOf(rs.X)
	seed := tval{}
	if isMap && ev.fa.spec.seedMapRange {
		seed = tval{seeds: []*trail{ev.seedTrail(rs.Pos(), "map iteration order")}}
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			continue
		}
		obj := ev.info.Defs[id]
		if obj == nil {
			obj = ev.info.Uses[id]
		}
		ev.bindObj(obj, mergeTval(seed, contTaint))
	}
}

// goStmt seeds variables written from inside a go-statement literal: their
// value afterwards depends on scheduling.
func (ev *funcEval) goStmt(gs *ast.GoStmt) {
	if !ev.fa.spec.seedGoroutine {
		return
	}
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := ev.info.Uses[id] // captured (not defined in the literal)
			if obj == nil || !isLocalVar(obj) {
				continue
			}
			ev.bindObj(obj, tval{seeds: []*trail{ev.seedTrail(as.Pos(), "written from an unsynchronized goroutine")}})
		}
		return true
	})
}

// returnStmt records the function's result summaries. Returns inside nested
// function literals are excluded (they are not F's results).
func (ev *funcEval) returnStmt(rs *ast.ReturnStmt) {
	if !ev.isOwnReturn(rs) {
		return
	}
	results := rs.Results
	if len(results) == 0 {
		// Bare return with named results.
		if ev.fi.decl.Type.Results == nil {
			return
		}
		i := 0
		for _, field := range ev.fi.decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := ev.info.Defs[name]; obj != nil {
					ev.recordReturn(i, ev.env[obj], rs.Pos())
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
		return
	}
	if len(results) == 1 {
		if call, ok := ast.Unparen(results[0]).(*ast.CallExpr); ok && ev.resultCount() > 1 {
			for i := 0; i < ev.resultCount(); i++ {
				ev.recordReturn(i, ev.callTaint(call, i), rs.Pos())
			}
			return
		}
	}
	for i, e := range results {
		ev.recordReturn(i, ev.taintOf(e), rs.Pos())
	}
}

func (ev *funcEval) resultCount() int {
	sig, _ := ev.fi.obj.Type().(*types.Signature)
	if sig == nil {
		return 0
	}
	return sig.Results().Len()
}

func (ev *funcEval) recordReturn(i int, v tval, pos token.Pos) {
	if v.empty() {
		return
	}
	if len(v.seeds) > 0 && ev.flow.retTaint[i] == nil {
		ev.flow.retTaint[i] = v.seeds[0].extend(flowStep{
			pos: ev.fa.position(pos), desc: "returned by " + funcDisplayName(ev.fi.obj), inter: true,
		})
		ev.fa.dirty = true
	}
	if v.params != 0 {
		for p := 0; p < 64; p++ {
			if v.params&(1<<p) == 0 {
				continue
			}
			if ev.flow.paramToRet[p]&(1<<i) == 0 {
				ev.flow.paramToRet[p] |= 1 << i
				ev.fa.dirty = true
			}
		}
	}
}

// isOwnReturn reports whether the return statement belongs to the analyzed
// function rather than a nested literal.
func (ev *funcEval) isOwnReturn(rs *ast.ReturnStmt) bool {
	own := true
	ast.Inspect(ev.fi.decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit.Pos() <= rs.Pos() && rs.Pos() < lit.End() {
				own = false
			}
			return false
		}
		return true
	})
	return own
}

// hitSink delivers a taint to a sink: seeds become findings, parameter bits
// become paramSink summary entries.
func (ev *funcEval) hitSink(v tval, step flowStep, pos token.Pos, emit bool) {
	if v.empty() {
		return
	}
	if emit {
		for _, seed := range v.seeds {
			ev.fa.emit(pos, seed.extend(step))
		}
	}
	ev.recordParamSink(v.params, []flowStep{step})
}

func (ev *funcEval) recordParamSink(params uint64, steps []flowStep) {
	if params == 0 {
		return
	}
	for p := 0; p < 64; p++ {
		if params&(1<<p) == 0 || ev.flow.paramSink[p] != nil {
			continue
		}
		ev.flow.paramSink[p] = (&trail{}).join(steps)
		ev.fa.dirty = true
	}
}

// evalCallEffects handles the side effects of a call expression: sink-call
// argument checks, seeded callback parameters, and callee paramSink
// application. Result taint is handled separately by callTaint.
func (ev *funcEval) evalCallEffects(call *ast.CallExpr, emit bool) {
	spec := ev.fa.spec
	if spec.seedFuncLitParams != nil {
		if idents, desc := spec.seedFuncLitParams(ev.fi.pkg, call); len(idents) > 0 {
			for _, id := range idents {
				ev.bindObj(ev.info.Defs[id], tval{seeds: []*trail{ev.seedTrail(id.Pos(), desc)}})
			}
		}
	}
	if spec.sinkCall != nil {
		if desc := spec.sinkCall(ev.fi.pkg, call); desc != "" {
			for i, arg := range call.Args {
				v := ev.taintOf(arg)
				ev.hitSink(v, flowStep{
					pos:  ev.fa.position(call.Pos()),
					desc: fmt.Sprintf("argument %d of %s", i+1, desc),
				}, call.Pos(), emit)
			}
			return // a direct sink call is terminal; no callee application
		}
	}
	callee := ev.fa.mod.staticCallee(ev.info, call)
	if callee == nil {
		return
	}
	cfi := ev.fa.mod.funcs[callee]
	cflow := cfi.flows[spec.name]
	if cflow == nil || len(cflow.paramSink) == 0 {
		return
	}
	if spec.skipPkg != nil && spec.skipPkg(cfi.pkg.Path) {
		return
	}
	args := ev.normalizedArgs(call)
	for j, arg := range args {
		if arg == nil {
			continue
		}
		ps := cflow.paramSink[j]
		if ps == nil {
			// Variadic tail maps onto the last parameter.
			continue
		}
		v := ev.taintOf(arg)
		if v.empty() {
			continue
		}
		step := flowStep{
			pos:   ev.fa.position(call.Pos()),
			desc:  "passed to " + funcDisplayName(callee),
			inter: true,
		}
		if emit {
			for _, seed := range v.seeds {
				ev.fa.emit(call.Pos(), seed.extend(step).join(ps.steps))
			}
		}
		if v.params != 0 {
			ev.recordParamSink(v.params, append([]flowStep{step}, ps.steps...))
		}
	}
}

// normalizedArgs returns the call's arguments aligned with summary parameter
// indices: the receiver (for method calls) is index 0. Missing positions are
// nil.
func (ev *funcEval) normalizedArgs(call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := ev.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	out = append(out, call.Args...)
	return out
}

// taintOf evaluates the taint of a single-valued expression.
func (ev *funcEval) taintOf(e ast.Expr) tval {
	spec := ev.fa.spec
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ev.info.Uses[x]
		if obj == nil {
			obj = ev.info.Defs[x]
		}
		if obj == nil {
			return tval{}
		}
		if vr, ok := obj.(*types.Var); ok && spec.trackGlobals && vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
			if t := ev.fa.globalTaint[vr.Origin()]; t != nil {
				return mergeTval(ev.env[obj], tval{seeds: []*trail{t}})
			}
		}
		return ev.env[obj]
	case *ast.CallExpr:
		return ev.callTaint(x, 0)
	case *ast.SelectorExpr:
		v := tval{}
		if fv, ok := ev.info.Uses[x.Sel].(*types.Var); ok && fv.IsField() {
			if spec.trackFields {
				if t := ev.fa.fieldTaint[fv.Origin()]; t != nil {
					v = tval{seeds: []*trail{t}}
				}
			}
			// A field of a tainted value is tainted.
			v = mergeTval(v, ev.taintOf(x.X))
		}
		if !ev.fa.typeCarries(ev.info.TypeOf(e)) {
			return tval{}
		}
		return v
	case *ast.IndexExpr:
		if !ev.fa.typeCarries(ev.info.TypeOf(e)) {
			return tval{}
		}
		// Element identity comes from the container; the index only selects.
		return ev.taintOf(x.X)
	case *ast.BinaryExpr:
		return mergeTval(ev.taintOf(x.X), ev.taintOf(x.Y))
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return tval{} // channel receive: unmodeled
		}
		return ev.taintOf(x.X)
	case *ast.StarExpr:
		return ev.taintOf(x.X)
	case *ast.TypeAssertExpr:
		return ev.taintOf(x.X)
	case *ast.SliceExpr:
		return ev.taintOf(x.X)
	case *ast.CompositeLit:
		v := tval{}
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			v = mergeTval(v, ev.taintOf(el))
		}
		if !ev.fa.typeCarries(ev.info.TypeOf(e)) {
			return tval{}
		}
		return v
	}
	return tval{}
}

// callTaint evaluates the taint of result idx of a call expression.
func (ev *funcEval) callTaint(call *ast.CallExpr, idx int) tval {
	spec := ev.fa.spec
	info := ev.info

	// Seed call?
	if spec.seedCall != nil {
		if desc := spec.seedCall(ev.fi.pkg, call); desc != "" {
			return tval{seeds: []*trail{ev.seedTrail(call.Pos(), desc)}}
		}
	}

	// Conversion: T(x) propagates x.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if !ev.fa.typeCarries(info.TypeOf(call)) {
			return tval{}
		}
		return ev.taintOf(call.Args[0])
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				v := tval{}
				for _, a := range call.Args {
					v = mergeTval(v, ev.taintOf(a))
				}
				return v
			case "min", "max":
				v := tval{}
				for _, a := range call.Args {
					v = mergeTval(v, ev.taintOf(a))
				}
				return v
			default:
				return tval{} // len, cap, make, new, ...: order-insensitive
			}
		}
	}

	callee := ev.fa.mod.staticCallee(info, call)
	if callee == nil {
		if spec.unknownCallPropagates {
			// Stdlib / dynamic call: receiver and argument taint flows through
			// (time.Now().UnixNano(), fmt.Sprintf("%d", t), ...).
			v := tval{}
			for _, a := range ev.normalizedArgs(call) {
				if a != nil {
					v = mergeTval(v, ev.taintOf(a))
				}
			}
			if len(v.seeds) > 0 || v.params != 0 {
				if !ev.fa.typeCarries(info.TypeOf(call)) {
					return tval{}
				}
			}
			return v
		}
		return tval{}
	}
	cfi := ev.fa.mod.funcs[callee]
	cflow := cfi.flows[spec.name]
	if cflow == nil {
		return tval{}
	}
	out := tval{}
	if t := cflow.retTaint[idx]; t != nil {
		out = mergeTval(out, tval{seeds: []*trail{t.extend(flowStep{
			pos: ev.fa.position(call.Pos()), desc: "call to " + funcDisplayName(callee), inter: true,
		})}})
	}
	args := ev.normalizedArgs(call)
	for j, arg := range args {
		if arg == nil {
			continue
		}
		if cflow.paramToRet[j]&(1<<idx) == 0 {
			continue
		}
		v := ev.taintOf(arg)
		if v.empty() {
			continue
		}
		step := flowStep{
			pos:   ev.fa.position(call.Pos()),
			desc:  "through " + funcDisplayName(callee),
			inter: true,
		}
		moved := tval{params: v.params}
		for _, seed := range v.seeds {
			moved.seeds = append(moved.seeds, seed.extend(step))
		}
		out = mergeTval(out, moved)
	}
	if !out.empty() && !ev.fa.typeCarries(info.TypeOf(call)) {
		return tval{}
	}
	return out
}
