package main

import (
	"go/ast"
	"go/types"
)

// aliasflowAnalyzer is the interprocedural extension of batchalias: a pooled
// *packet.Packet that is passed through helper functions and stashed into a
// struct field, package-level variable or channel is flagged at the escape
// site, with the path from the pool access to the store. batchalias only sees
// escapes inside the function that obtained the packet; aliasflow summarizes
// which parameters of every module function escape and propagates pool taint
// through call chains. Purely local escapes stay batchalias findings (the
// trail must cross a function boundary here).
var aliasflowAnalyzer = &modAnalyzer{
	name: "aliasflow",
	doc:  "flag pooled *packet.Packet values escaping through helpers into fields, globals or channels",
	run:  runAliasflow,
}

var aliasflowSpec = &flowSpec{
	name:              "aliasflow",
	seedCall:          aliasflowSeedCall,
	seedFuncLitParams: aliasflowSeedForEachLive,
	sinkStore:         aliasflowSinkStore,
	sendSink:          "sent on a channel",
	typeOK:            packetCarrier,
	skipPkg:           aliasflowSkipPkg,
	interOnly:         true,
	reportAtSink:      true,
}

func runAliasflow(m *module) []finding {
	var out []finding
	for _, ff := range runFlow(m, aliasflowSpec) {
		out = append(out, finding{
			pos:  ff.pos,
			rule: "aliasflow",
			msg: "pooled *packet.Packet escapes into long-lived storage through a helper " +
				"(aliases memory reclaimed on Reset; copy the bytes you need); path: " +
				renderPath(ff.path),
			path: ff.path,
		})
	}
	return out
}

// aliasflowSkipPkg exempts the packages that legitimately own pooled packet
// storage: the pool itself, the batch slot arrays, the packet internals, and
// the netio RX queues that buffer packets between polls.
func aliasflowSkipPkg(path string) bool {
	return path == batchPkgPath || path == mempoolPkgPath ||
		path == packetPkgPath || path == "nba/internal/netio"
}

func aliasflowSeedCall(p *lintPackage, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if isMethodOn(p.Info.Selections[sel], batchPkgPath, "Batch", "Packet") {
		return "pooled packet from Batch.Packet"
	}
	return ""
}

func aliasflowSeedForEachLive(p *lintPackage, call *ast.CallExpr) ([]*ast.Ident, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isMethodOn(p.Info.Selections[sel], batchPkgPath, "Batch", "ForEachLive") {
		return nil, ""
	}
	if len(call.Args) != 1 {
		return nil, ""
	}
	lit, ok := call.Args[0].(*ast.FuncLit)
	if !ok || len(lit.Type.Params.List) != 2 {
		return nil, ""
	}
	return lit.Type.Params.List[1].Names, "pooled packet from Batch.ForEachLive"
}

func aliasflowSinkStore(p *lintPackage, lhs ast.Expr) string {
	return escapeKind(p.Info, lhs)
}

// packetCarrier reports whether a type can carry a pooled packet reference:
// *packet.Packet itself, or a slice/array/map/channel of carriers. Structs
// are not carriers — a struct holding a packet is exactly the escape the rule
// flags, not a conduit.
func packetCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := types.Unalias(t).(type) {
	case *types.Pointer:
		n := namedOrigin(u)
		return n != nil && n.Obj().Name() == "Packet" &&
			n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == packetPkgPath
	case *types.Slice:
		return packetCarrier(u.Elem())
	case *types.Array:
		return packetCarrier(u.Elem())
	case *types.Map:
		return packetCarrier(u.Elem())
	case *types.Chan:
		return packetCarrier(u.Elem())
	case *types.Named:
		return packetCarrier(u.Underlying())
	}
	return false
}
