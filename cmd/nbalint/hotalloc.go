package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotallocAnalyzer is the static complement of the testing.AllocsPerRun
// gates: functions annotated with //nba:hotpath in their doc comment must not
// contain allocation constructs. The dynamic gates cover three call sites;
// the annotation covers every hot function — simtime event-heap operations,
// the worker RX loop, batch recycling — including ones with no benchmark.
//
// Flagged constructs, each a reliable heap allocation when it executes:
//
//   - &T{...} composite literals and new(T)
//   - make(slice/map/chan)
//   - append whose destination is a struct field or package-level variable
//     (growth amortizes but still allocates; annotate an allow if amortized
//     growth is the design)
//   - capturing function literals that are stored, returned or sent (a
//     literal only passed as a call argument usually stays on the stack)
//   - method values (x.M used as a value always allocates a closure)
//   - string <-> []byte conversions
//   - non-pointer values passed to interface parameters (boxing)
//
// Arguments of panic() are exempt: building the panic message allocates but
// the path is already failing.
var hotallocAnalyzer = &modAnalyzer{
	name: "hotalloc",
	doc:  "forbid allocation constructs in //nba:hotpath-annotated functions",
	run:  runHotalloc,
}

func runHotalloc(m *module) []finding {
	var out []finding
	report := func(pos token.Pos, msg string) {
		out = append(out, finding{pos: m.fset.Position(pos), rule: "hotalloc", msg: msg})
	}
	for _, fi := range m.order {
		if !fi.hotpath || fi.decl.Body == nil {
			continue
		}
		checkHotalloc(m, fi, report)
	}
	return out
}

func checkHotalloc(m *module, fi *funcInfo, report func(pos token.Pos, msg string)) {
	info := fi.pkg.Info
	body := fi.decl.Body

	// Panic arguments are exempt (failing path); collect their spans first.
	type span struct{ lo, hi token.Pos }
	var panicSpans []span
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				for _, a := range call.Args {
					panicSpans = append(panicSpans, span{a.Pos(), a.End()})
				}
			}
		}
		return true
	})
	exempt := func(pos token.Pos) bool {
		for _, s := range panicSpans {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Function literals passed directly as call arguments usually stay on the
	// stack; collect them so only stored/returned/sent literals are flagged.
	// Callee expressions are collected too, to tell method values (flagged)
	// from method calls (fine).
	argLits := map[*ast.FuncLit]bool{}
	calleeExprs := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		calleeExprs[ast.Unparen(call.Fun)] = true
		for _, a := range call.Args {
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				argLits[lit] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND && !exempt(n.Pos()) {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal allocates on a //nba:hotpath function; reuse a pooled or preallocated value")
				}
			}
		case *ast.CallExpr:
			checkHotallocCall(info, n, exempt, report)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) || exempt(rhs.Pos()) {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						if kind := escapeKind(info, n.Lhs[i]); kind != "" {
							report(rhs.Pos(), "append into a "+kind+" may grow on a //nba:hotpath function; preallocate or pool the backing array")
						}
					}
				}
			}
		case *ast.FuncLit:
			if !argLits[n] && capturesOuter(info, n) && !exempt(n.Pos()) {
				report(n.Pos(), "capturing function literal escapes (stored, returned or sent) on a //nba:hotpath function; hoist it to a field set once")
			}
		case *ast.SelectorExpr:
			if calleeExprs[n] || exempt(n.Pos()) {
				return true
			}
			if s, ok := info.Selections[n]; ok && s.Kind() == types.MethodVal {
				report(n.Pos(), "method value "+n.Sel.Name+" allocates a closure on a //nba:hotpath function; hoist it to a func field set once")
			}
		}
		return true
	})
}

// checkHotallocCall flags allocation-shaped calls: make, new, string<->[]byte
// conversions, and interface boxing of non-pointer arguments.
func checkHotallocCall(info *types.Info, call *ast.CallExpr, exempt func(token.Pos) bool, report func(pos token.Pos, msg string)) {
	if exempt(call.Pos()) {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates on a //nba:hotpath function; preallocate in the constructor")
			case "new":
				report(call.Pos(), "new allocates on a //nba:hotpath function; reuse a pooled or preallocated value")
			}
			return
		}
	}
	// Conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.TypeOf(call.Args[0])
		if src != nil {
			if isByteSlice(dst) && isString(src.Underlying()) {
				report(call.Pos(), "[]byte(string) conversion copies on a //nba:hotpath function; keep data as []byte end to end")
			}
			if isString(dst) && isByteSlice(src.Underlying()) {
				report(call.Pos(), "string([]byte) conversion copies on a //nba:hotpath function; keep data as []byte end to end")
			}
		}
		return
	}
	// Interface boxing of non-pointer arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil {
			continue
		}
		switch u := at.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: no boxing allocation
		case *types.Basic:
			if u.Kind() == types.UntypedNil {
				continue
			}
		}
		if exempt(arg.Pos()) {
			continue
		}
		report(arg.Pos(), "non-pointer value boxed into an interface parameter allocates on a //nba:hotpath function")
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// capturesOuter reports whether a function literal references variables
// declared outside its own body (a capturing closure).
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture needed
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}
