// Package-loading support for nbalint.
//
// go/packages is not available offline, so nbalint brings its own minimal
// loader: it parses a package directory with go/parser (honouring build
// constraints via go/build.MatchFile), resolves module-local imports
// ("nba/...") recursively from the module root, resolves fixture imports
// from extra roots (testdata/src layouts), and delegates standard-library
// imports to the compiler's export-data importer.
package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// lintPackage is one type-checked package ready for analysis.
type lintPackage struct {
	Path  string // import path, e.g. "nba/internal/core"
	Dir   string // absolute directory
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// loader parses and type-checks packages on demand, caching by import path.
type loader struct {
	fset       *token.FileSet
	moduleRoot string   // absolute path of the directory containing go.mod
	modulePath string   // module path from go.mod, e.g. "nba"
	extraRoots []string // additional roots laid out as <root>/<importpath>/

	std      types.Importer
	pkgs     map[string]*lintPackage
	checking map[string]bool // import-cycle guard
}

func newLoader(moduleRoot, modulePath string, extraRoots ...string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		extraRoots: extraRoots,
		std:        importer.ForCompiler(fset, "gc", nil),
		pkgs:       map[string]*lintPackage{},
		checking:   map[string]bool{},
	}
}

// readModulePath extracts the module path from the go.mod in dir.
func readModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", dir)
}

// findModuleRoot walks upward from dir until it finds a go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// dirFor maps an import path to the directory holding its source, checking
// extra roots (fixtures) before the module tree.
func (l *loader) dirFor(path string) (string, bool) {
	for _, root := range l.extraRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if path == l.modulePath {
		return l.moduleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rest))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer so the loader can feed itself to
// types.Config: module-local and fixture paths load from source; everything
// else is assumed to be standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package at the given import path.
func (l *loader) load(path string) (*lintPackage, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("cannot resolve import %q", path)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	lp := &lintPackage{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}
	l.pkgs[path] = lp
	return lp, nil
}

// parseDir parses the non-test, build-constraint-satisfying Go files of a
// directory, in deterministic (sorted) order.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", filepath.Join(dir, name), err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
