// Command pktgen synthesises packet traces in the nbatrace format (the
// stand-in for the paper's CAIDA dataset) for replay with `nba -trace`.
//
// Usage:
//
//	pktgen -n 100000 -o caida.nbatrace          # synthetic-CAIDA mix
//	pktgen -n 50000 -size 256 -o fixed.nbatrace # fixed-size frames
//	pktgen -stats caida.nbatrace                # inspect a trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"nba/internal/gen"
	"nba/internal/packet"
	"nba/internal/rng"
)

func main() {
	var (
		n     = flag.Int("n", 100000, "number of packets")
		size  = flag.Int("size", 0, "fixed frame size (0 = CAIDA-like mix)")
		flows = flag.Int("flows", 16384, "number of flows")
		seed  = flag.Uint64("seed", 42, "generator seed")
		out   = flag.String("o", "trace.nbatrace", "output path")
		stats = flag.String("stats", "", "print statistics of an existing trace and exit")
	)
	flag.Parse()

	if *stats != "" {
		if err := printStats(*stats); err != nil {
			fatal(err)
		}
		return
	}

	var records []gen.TraceRecord
	if *size == 0 {
		records = gen.SynthesizeTrace(*n, *seed)
	} else {
		records = fixedTrace(*n, *size, *flows, *seed)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := gen.WriteTrace(f, records); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d packets to %s\n", len(records), *out)
}

func fixedTrace(n, size, flows int, seed uint64) []gen.TraceRecord {
	if size < packet.EthHdrLen+packet.IPv4HdrLen+packet.UDPHdrLen || size > packet.MaxFrameLen {
		fatal(fmt.Errorf("size %d out of range", size))
	}
	r := rng.New(seed)
	records := make([]gen.TraceRecord, n)
	for i := range records {
		flow := uint32(r.Intn(flows))
		records[i] = gen.TraceRecord{
			FrameLen: uint16(size),
			Src:      0x0A000000 + flow,
			Dst:      flow * 2654435761,
			SPort:    uint16(1024 + flow%50000),
			DPort:    uint16(53 + flow%7),
		}
	}
	return records
}

func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := gen.ReadTrace(f)
	if err != nil {
		return err
	}
	sizes := map[int]int{}
	flowSet := map[uint64]int{}
	var bytes uint64
	for _, rec := range tr.Records {
		sizes[int(rec.FrameLen)]++
		flowSet[uint64(rec.Src)<<32|uint64(rec.Dst)]++
		bytes += uint64(rec.FrameLen)
	}
	fmt.Printf("packets:   %d\n", len(tr.Records))
	fmt.Printf("flows:     %d\n", len(flowSet))
	fmt.Printf("mean size: %.1f B\n", float64(bytes)/float64(len(tr.Records)))
	var keys []int
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Println("size histogram:")
	for _, k := range keys {
		fmt.Printf("  %5d B: %6.2f%%\n", k, float64(sizes[k])/float64(len(tr.Records))*100)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pktgen:", err)
	os.Exit(1)
}
