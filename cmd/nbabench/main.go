// Command nbabench regenerates the paper's tables and figures on the
// simulated platform.
//
// Usage:
//
//	nbabench -list
//	nbabench -exp fig12            # one experiment
//	nbabench -exp faults           # graceful degradation under a GPU outage
//	nbabench -all                  # everything
//	nbabench -all -quick           # fast smoke pass
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nba/internal/bench"

	// Register the perf-trajectory experiment (lives outside internal/bench
	// because it drives internal/chaos, which itself imports bench).
	_ "nba/internal/perf"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments")
		exp      = flag.String("exp", "", "experiment ID to run")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "shrink simulated durations")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		parallel = flag.Int("parallel", 1, "concurrent grid points per experiment (0 = NumCPU, 1 = serial; output is identical at any value)")
	)
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opts := bench.Options{Quick: *quick, Seed: *seed, Parallelism: workers}

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
	case *exp != "":
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runOne(e, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *all:
		for _, e := range bench.All() {
			if err := runOne(e, opts); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e bench.Experiment, opts bench.Options) error {
	fmt.Printf("=== %s: %s\n", e.ID, e.Title)
	fmt.Printf("    paper: %s\n\n", e.Paper)
	start := time.Now()
	if err := e.Run(opts, os.Stdout); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("\n    (%.1fs wall)\n\n", time.Since(start).Seconds())
	return nil
}
