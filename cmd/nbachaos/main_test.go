package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"nba/internal/chaos"
	"nba/internal/fault"
	"nba/internal/simtime"
)

func writeRepro(t *testing.T, name string, c chaos.Case) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := chaos.WriteRepro(path, c); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayExitContract pins the replay exit codes scripts rely on:
// 0 = reproducer ran clean, 1 = it reproduced an invariant violation,
// 2 = it could not be run at all (usage / load error).
func TestReplayExitContract(t *testing.T) {
	clean := writeRepro(t, "clean.json", chaos.Case{
		App: "ipv4", Seed: 3, Plan: &fault.Plan{},
	})
	// A corruption window with sentinel sampling disarmed: nothing
	// quarantines, so tainted packets reach TX and the corrupt.leak oracle
	// fires deterministically.
	leak := writeRepro(t, "leak.json", chaos.Case{
		App:  "ipv4",
		Seed: 3,
		Plan: fault.Corruption(
			300*simtime.Microsecond, 2*simtime.Millisecond, 0, 0.5, 0xff),
		DisarmSampling: true,
	})
	badJSON := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badJSON, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	badKind := filepath.Join(t.TempDir(), "kind.json")
	if err := os.WriteFile(badKind,
		[]byte(`{"app":"ipv4","seed":1,"events":[{"at_ps":1,"kind":"device.explode"}]}`),
		0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean repro", []string{clean}, replayClean},
		{"corruption leak reproduced", []string{leak}, replayViolated},
		{"no args", nil, replayUsage},
		{"two args", []string{clean, leak}, replayUsage},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.json")}, replayUsage},
		{"malformed json", []string{badJSON}, replayUsage},
		{"unknown fault kind", []string{badKind}, replayUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := replayExit(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("replayExit(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
			if tc.want == replayUsage && stderr.Len() == 0 {
				t.Fatalf("usage-error exit printed nothing to stderr")
			}
		})
	}
}
