// Command nbachaos is the deterministic chaos-search driver: it sweeps
// seeded random fault plans across the standard applications, runs every
// case twice under the invariant oracle (cross-checking trace digests), and
// shrinks any failure to a minimal replayable reproducer file.
//
// Usage:
//
//	nbachaos sweep -seeds 50 -base 1 -repro-dir ./repro
//	nbachaos sweep -apps ipv4,ids -seeds 5 -digest-only
//	nbachaos replay ./repro/repro-ipv4-7.json
//
// Everything is a pure function of (app, seed, plan): a sweep with the same
// flags prints the same combined digest on the same tree, so the digest is
// a behavioural fingerprint of the build, and a reproducer file is a
// complete bug report. Exit status is 1 when any case violates an
// invariant.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"nba/internal/chaos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "sweep":
		sweep(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  nbachaos sweep [flags]          sweep seeded random fault plans
  nbachaos replay <repro.json>    re-run a written reproducer

sweep flags:
  -apps ipv4,ipv6,ipsec,ids   apps to sweep (default all)
  -tenants N                  co-host N apps per case as equal-share tenants
                              (0/1 = classic single-app sweep)
  -reconfig                   arm control-plane churn: each case also carries a
                              random reconfig plan (tenant admit/evict, share
                              retunes, device hot-plug, queue resizes) over its
                              tenant mix plus one latent app; implies -tenants 2
  -seeds N                    seeds per app (default 50)
  -base N                     first seed (default 1)
  -repro-dir DIR              write reproducer files for failures
  -shrink-runs N              shrink probe budget per failure (default 60, 0 off)
  -parallel N                 concurrent case runs (0 = NumCPU, 1 = serial;
                              digests are identical at any value)
  -digest-only                print only the combined digest`)
	os.Exit(2)
}

func sweep(args []string) {
	fs := flag.NewFlagSet("nbachaos sweep", flag.ExitOnError)
	var (
		apps       = fs.String("apps", "", "comma-separated apps (default: all)")
		tenants    = fs.Int("tenants", 0, "co-host N apps per case as tenants (0/1 = single-app)")
		reconfigOn = fs.Bool("reconfig", false, "arm control-plane churn plans (implies -tenants 2)")
		seeds      = fs.Int("seeds", 50, "seeds per app")
		base       = fs.Uint64("base", 1, "first seed")
		reproDir   = fs.String("repro-dir", "", "directory for reproducer files")
		shrinkRuns = fs.Int("shrink-runs", 60, "shrink probe budget per failure (0 disables)")
		parallel   = fs.Int("parallel", 1, "concurrent case runs (0 = NumCPU, 1 = serial)")
		digestOnly = fs.Bool("digest-only", false, "print only the combined digest")
	)
	fs.Parse(args)

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opts := chaos.SweepOptions{
		Seeds:         *seeds,
		TenantCount:   *tenants,
		Reconfig:      *reconfigOn,
		BaseSeed:      *base,
		ReproDir:      *reproDir,
		MaxShrinkRuns: *shrinkRuns,
		Parallelism:   workers,
	}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	if opts.ReproDir != "" {
		if err := os.MkdirAll(opts.ReproDir, 0o755); err != nil {
			fatal(err)
		}
	}
	res, err := chaos.Sweep(opts)
	if err != nil {
		fatal(err)
	}
	if *digestOnly {
		fmt.Println(res.Digest)
	} else {
		fmt.Printf("nbachaos: %d cases (x2 runs each), %d failure(s)\n", res.Cases, len(res.Failures))
		fmt.Printf("combined digest: %s\n", res.Digest)
	}
	if len(res.Failures) == 0 {
		return
	}
	for _, f := range res.Failures {
		after := len(f.Case.Plan.Events)
		if f.Case.Reconfig != nil {
			after += len(f.Case.Reconfig.Events)
		}
		fmt.Printf("FAIL %s seed %d: %d violation(s), plan shrunk %d -> %d event(s) in %d run(s)\n",
			f.Case.Label(), f.Case.Seed, len(f.Outcome.Violations), f.ShrunkFrom, after, f.ShrinkRuns)
		for _, v := range f.Outcome.Violations {
			fmt.Printf("  %s\n", v)
		}
		if f.ReproPath != "" {
			fmt.Printf("  reproducer: %s\n", f.ReproPath)
		}
	}
	os.Exit(1)
}

func replay(args []string) {
	os.Exit(replayExit(args, os.Stdout, os.Stderr))
}

// Replay exit codes — a contract scripts can rely on: 0 means the reproducer
// ran clean, 1 means it reproduced at least one invariant violation, 2 means
// the reproducer could not be run at all (usage, unreadable or malformed
// file, invalid plan, unknown app).
const (
	replayClean    = 0
	replayViolated = 1
	replayUsage    = 2
)

// replayExit runs one reproducer and returns its exit code (factored out of
// replay so the contract is testable without exec-ing the binary).
func replayExit(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: nbachaos replay <repro.json>")
		return replayUsage
	}
	c, err := chaos.ReadRepro(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "nbachaos:", err)
		return replayUsage
	}
	out, err := chaos.RunTwice(c)
	if err != nil {
		fmt.Fprintln(stderr, "nbachaos:", err)
		return replayUsage
	}
	reconfigN := 0
	if c.Reconfig != nil {
		reconfigN = len(c.Reconfig.Events)
	}
	fmt.Fprintf(stdout, "nbachaos: replay %s (app %s, seed %d, %d fault + %d reconfig event(s))\n",
		args[0], c.Label(), c.Seed, len(c.Plan.Events), reconfigN)
	fmt.Fprintf(stdout, "trace digest: %s\n", out.Digest)
	if !out.Failed() {
		fmt.Fprintln(stdout, "clean: no invariant violations")
		return replayClean
	}
	fmt.Fprintf(stdout, "%d violation(s):\n", len(out.Violations))
	for _, v := range out.Violations {
		fmt.Fprintf(stdout, "  %s\n", v)
	}
	return replayViolated
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbachaos:", err)
	os.Exit(1)
}
