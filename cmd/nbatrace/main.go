// Command nbatrace records, summarizes and diffs deterministic run traces.
//
// Because every run is a pure function of configuration and seed, two
// recordings of the same run must be byte-identical; `nbatrace diff` verifies
// that and, when a code change altered behaviour, reports the first
// divergence (event index, virtual timestamp, payload delta).
//
// Usage:
//
//	nbatrace record -app ipv4 -lb cpu -gbps 1 -o run.jsonl
//	nbatrace record -app ipsec -lb fixed=0.8 -chrome run.chrome.json -o run.jsonl
//	nbatrace record -app ipsec -lb fixed=0.8 -faults -o outage.jsonl
//	nbatrace record -app ipsec -lb fixed=0.8 -overload -o shed.jsonl
//	nbatrace record -app ipsec -lb fixed=0.8 -corrupt -o corrupt.jsonl
//	nbatrace record -tenants ipv4,ipsec -o mt.jsonl
//	nbatrace record -tenants ipv4,ids -reconfig -o churn.jsonl
//	nbatrace summary run.jsonl
//	nbatrace diff a.jsonl b.jsonl
//
// -faults injects the canonical scripted GPU outage (internal/fault); the
// plan is part of the run identity, so faulted recordings replay and diff
// exactly like fault-free ones. -corrupt injects the canonical
// silent-corruption window (device 0 flips bits from 1/4 to 1/2 of the run)
// with the integrity sentinel armed at full sampling: the trace carries the
// sentinel checks, mismatches, quarantines and device escalation, and the
// summary gains an "integrity sentinels" section. -reconfig arms the
// canonical tenant-churn
// reconfiguration (internal/reconfig): a latent ipsec "churn" tenant is
// admitted at 1/4 of the run, retuned at 1/2 and evicted at 3/4 through
// epoch drain-and-handoff; the plan is likewise part of the run identity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nba/internal/bench"
	"nba/internal/core"
	"nba/internal/fault"
	"nba/internal/integrity"
	"nba/internal/overload"
	"nba/internal/reconfig"
	"nba/internal/simtime"
	"nba/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "summary":
		summary(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  nbatrace record [flags] -o <out.jsonl>   run a pipeline and record its trace
  nbatrace summary <trace.jsonl>           per-element / per-device profile
  nbatrace diff <a.jsonl> <b.jsonl>        first-divergence report`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("nbatrace record", flag.ExitOnError)
	var (
		app      = fs.String("app", "ipv4", "built-in app: l2fwd, echo, ipv4, ipv6, ipsec, ids")
		tenants  = fs.String("tenants", "", "co-host built-in apps as equal-share tenants: app,app,... (overrides -app)")
		lbAlg    = fs.String("lb", "cpu", "load balancer: cpu, gpu, fixed=<f>, adaptive")
		gbps     = fs.Float64("gbps", 1, "offered load per port (Gbps)")
		size     = fs.Int("size", 64, "frame size in bytes; 0 = synthetic CAIDA mix")
		workers  = fs.Int("workers", 1, "worker threads per socket (0 = max)")
		duration = fs.Duration("duration", 2*time.Millisecond, "measured (virtual) duration")
		warmup   = fs.Duration("warmup", 200*time.Microsecond, "warmup (virtual)")
		seed     = fs.Uint64("seed", 42, "simulation seed")
		events   = fs.Int("events", 1<<16, "ring capacity: trace events retained for export")
		faults   = fs.Bool("faults", false, "inject the canonical GPU outage (device 0 fails at 1/4 of the run, recovers at 1/2)")
		corrupt  = fs.Bool("corrupt", false, "inject the canonical silent-corruption window (device 0 corrupts from 1/4 to 1/2 of the run) with the integrity sentinel armed")
		overl    = fs.Bool("overload", false, "arm overload control and inject a sustained 2.5x load burst over the middle half of the run")
		rc       = fs.Bool("reconfig", false, "arm the canonical tenant-churn reconfiguration (requires -tenants): admit a latent ipsec tenant at 1/4 of the run, retune at 1/2, evict at 3/4")
		out      = fs.String("o", "", "output JSONL path (required)")
		chrome   = fs.String("chrome", "", "also export Chrome trace_event JSON to this path")
	)
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "nbatrace record: -o is required")
		fs.Usage()
		os.Exit(2)
	}

	tr := trace.New(trace.Options{Capacity: *events})
	spec := bench.RunSpec{
		App:        *app,
		LB:         *lbAlg,
		Size:       *size,
		OfferedBps: *gbps * 1e9,
		Workers:    *workers,
		Warmup:     simtime.Time(warmup.Nanoseconds()) * simtime.Nanosecond,
		Duration:   simtime.Time(duration.Nanoseconds()) * simtime.Nanosecond,
		Seed:       *seed,
		Tracer:     tr,
	}
	if *tenants != "" {
		// Tenant recordings carry every tenant's events on one timeline
		// (each tagged with its tenant index), so multi-tenant runs diff
		// and replay exactly like single-app ones.
		for i, name := range strings.Split(*tenants, ",") {
			name = strings.TrimSpace(name)
			cfgText, err := bench.AppConfig(name, *lbAlg)
			if err != nil {
				fatal(err)
			}
			spec.Tenants = append(spec.Tenants, core.Tenant{
				Name:        name,
				GraphConfig: cfgText,
				Share:       1,
				Generator:   bench.GeneratorFor(name, *size, *seed+1+uint64(i)),
			})
		}
	}
	if *rc {
		// The reconfig plan is part of the run identity too: recording twice
		// with -reconfig must still produce byte-identical traces, with the
		// epoch begin/drain/commit protocol and the churned tenant's whole
		// lifecycle (admit, retune, evict, digest seal) on the timeline.
		if *tenants == "" {
			fatal(fmt.Errorf("-reconfig requires -tenants (the churn plan admits a tenant into a running mix)"))
		}
		churnCfg, err := bench.AppConfig("ipsec", *lbAlg)
		if err != nil {
			fatal(err)
		}
		spec.LatentTenants = []core.Tenant{{
			Name:        "churn",
			GraphConfig: churnCfg,
			Share:       1,
			Generator:   bench.GeneratorFor("ipsec", *size, *seed+101),
		}}
		spec.Reconfig = reconfig.Churn(spec.Warmup+spec.Duration, "churn")
	}
	if *faults {
		// The fault plan is part of the run identity: recording twice with
		// -faults must still produce byte-identical traces, with the
		// injected events and the framework's reactions (task failures, CPU
		// fallbacks, balancer collapse) on the timeline.
		span := spec.Warmup + spec.Duration
		spec.FaultPlan = fault.GPUOutage(span/4, span/2, 0)
	}
	if *corrupt {
		// Silent corruption with the sentinel armed: the corruption stream,
		// sampling coins and escalation are all part of the run identity, so
		// -corrupt recordings are byte-identical across records too.
		if spec.FaultPlan != nil {
			fatal(fmt.Errorf("-corrupt and -faults are mutually exclusive"))
		}
		span := spec.Warmup + spec.Duration
		spec.FaultPlan = fault.Corruption(span/4, span/2, 0, 1, 0x5a)
		spec.Integrity = &integrity.Config{SampleRate: 1}
	}
	if *overl {
		// Overload control plus a sustained burst: the shed decisions, level
		// transitions and bias updates are ordinary trace events, so armed
		// recordings replay and diff exactly like the rest.
		if spec.FaultPlan != nil {
			fatal(fmt.Errorf("-overload and -faults/-corrupt are mutually exclusive"))
		}
		span := spec.Warmup + spec.Duration
		spec.Overload = overload.Defaults()
		spec.FaultPlan = &fault.Plan{Events: fault.Burst(span/4, span/2, 2.5)}
	}
	if _, err := bench.Execute(spec); err != nil {
		fatal(err)
	}

	appLabel := *app
	if *tenants != "" {
		appLabel = "tenants:" + *tenants
	}
	label := fmt.Sprintf("app=%s lb=%s gbps=%g size=%d workers=%d seed=%d faults=%v corrupt=%v overload=%v reconfig=%v",
		appLabel, *lbAlg, *gbps, *size, *workers, *seed, *faults, *corrupt, *overl, *rc)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteJSONL(f, label); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d events (%d retained) to %s\n", tr.Total(), tr.Total()-tr.Dropped(), *out)
	fmt.Printf("digest: %s\n", tr.Digest())

	if *chrome != "" {
		cf, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChrome(cf, tr.Events()); err != nil {
			cf.Close()
			fatal(err)
		}
		if err := cf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace: %s (load in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}
}

func summary(args []string) {
	if len(args) != 1 {
		usage()
	}
	f := readTrace(args[0])
	fmt.Printf("%s\n", f.Meta.Label)
	fmt.Printf("digest: %s (total %d, %d not retained)\n\n", f.Meta.Digest, f.Meta.Total, f.Meta.Dropped)
	if err := trace.Summarize(f.Events).Write(os.Stdout); err != nil {
		fatal(err)
	}
}

func diff(args []string) {
	if len(args) != 2 {
		usage()
	}
	a, b := readTrace(args[0]), readTrace(args[1])

	if a.Meta.Digest == b.Meta.Digest && a.Meta.Total == b.Meta.Total {
		fmt.Printf("zero divergence: both traces digest to %s over %d events\n", a.Meta.Digest, a.Meta.Total)
		return
	}

	fmt.Printf("traces diverge:\n  A: %s  (%d events, %s)\n  B: %s  (%d events, %s)\n",
		args[0], a.Meta.Total, a.Meta.Digest, args[1], b.Meta.Total, b.Meta.Digest)
	if lo, hi, div := trace.DiffCheckpoints(a.Checkpoints, b.Checkpoints); div {
		fmt.Printf("checkpoint chains diverge in event window (%d, %d]\n", lo, hi)
	}
	if d := trace.Diff(a.Events, b.Events); d != nil {
		// Positional index within the retained windows; with full traces
		// (Dropped == 0) this is the absolute event index.
		fmt.Printf("first retained-event divergence: %s\n", d.String())
	} else {
		fmt.Println("retained events are identical: the divergence is in events" +
			" that fell out of the ring; re-record with a larger -events")
	}
	os.Exit(1)
}

func readTrace(path string) *trace.File {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tf, err := trace.ReadJSONL(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return tf
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbatrace:", err)
	os.Exit(1)
}
