// Command nba runs a packet-processing pipeline described in the NBA
// configuration language on the simulated platform and reports throughput,
// drops and latency.
//
// Usage:
//
//	nba -config router.click -gbps 10 -size 64 -duration 100ms
//	nba -app ipsec -lb adaptive -gbps 10 -size 256
//	nba -app ipsec -lb fixed=0.8 -trace caida.nbatrace
//	nba -tenants ipv4=2,ipsec -gbps 10 -size 64
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nba/internal/bench"
	"nba/internal/core"
	"nba/internal/gen"
	"nba/internal/netio"
	"nba/internal/simtime"
)

func main() {
	var (
		configPath = flag.String("config", "", "pipeline configuration file (.click)")
		app        = flag.String("app", "", "built-in app: l2fwd, echo, ipv4, ipv6, ipsec, ids")
		lbAlg      = flag.String("lb", "cpu", "load balancer: cpu, gpu, fixed=<f>, adaptive")
		gbps       = flag.Float64("gbps", 10, "offered load per port (Gbps)")
		size       = flag.Int("size", 64, "frame size in bytes; 0 = synthetic CAIDA mix")
		workers    = flag.Int("workers", 0, "worker threads per socket (0 = max)")
		duration   = flag.Duration("duration", 50*time.Millisecond, "measured (virtual) duration")
		warmup     = flag.Duration("warmup", 10*time.Millisecond, "warmup (virtual)")
		tenants    = flag.String("tenants", "", "co-host built-in apps as tenants: app[=share],app[=share],... (overrides -config/-app)")
		trace      = flag.String("trace", "", "replay an nbatrace file instead of synthetic traffic")
		pcapOut    = flag.String("pcap", "", "capture the first 1000 transmitted frames to a pcap file")
		verbose    = flag.Bool("v", false, "print per-element statistics")
		seed       = flag.Uint64("seed", 42, "simulation seed")
	)
	flag.Parse()

	spec := bench.RunSpec{
		App:        *app,
		LB:         *lbAlg,
		Size:       *size,
		OfferedBps: *gbps * 1e9,
		Workers:    *workers,
		Warmup:     simtime.Time(warmup.Nanoseconds()) * simtime.Nanosecond,
		Duration:   simtime.Time(duration.Nanoseconds()) * simtime.Nanosecond,
		Seed:       *seed,
	}

	var cfgText string
	switch {
	case *tenants != "":
		ts, err := parseTenants(*tenants, *lbAlg, *size, *seed)
		if err != nil {
			fatal(err)
		}
		spec.Tenants = ts
	case *configPath != "":
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		cfgText = string(data)
	case *app != "":
		text, err := bench.AppConfig(*app, *lbAlg)
		if err != nil {
			fatal(err)
		}
		cfgText = text
	default:
		fmt.Fprintln(os.Stderr, "nba: need -config or -app")
		flag.Usage()
		os.Exit(2)
	}

	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		tr, err := gen.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		tr.Seed = *seed
		spec.Generator = tr
	}

	if *pcapOut != "" {
		spec.CaptureTx = 1000
	}
	r, err := bench.ExecuteConfig(cfgText, spec)
	if err != nil {
		fatal(err)
	}
	if *pcapOut != "" {
		f, err := os.Create(*pcapOut)
		if err != nil {
			fatal(err)
		}
		if err := netio.WritePcap(f, r.Capture); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("captured %d frames to %s\n", len(r.Capture), *pcapOut)
	}

	fmt.Printf("measured window:      %v\n", r.Measured)
	fmt.Printf("throughput:           %.2f Gbps (%.2f Mpps)\n", r.TxGbps, r.TxPPS/1e6)
	for i, g := range r.PerPortGbps {
		fmt.Printf("  port %d:             %.2f Gbps\n", i, g)
	}
	fmt.Printf("rx delivered/dropped: %d / %d (alloc failures %d)\n", r.RxDelivered, r.RxDropped, r.AllocFailed)
	fmt.Printf("graph drops:          %d\n", r.GraphDrops)
	fmt.Printf("offloaded packets:    %d\n", r.OffloadedPackets)
	for _, tr := range r.Tenants {
		fmt.Printf("tenant %-12s %.2f Gbps, rx %d/%d, shed %d, p99 %v\n",
			tr.Name+":", tr.TxGbps, tr.RxDelivered, tr.RxDropped, tr.ShedPackets,
			tr.Latency.Percentile(99))
	}
	if r.Latency.Count() > 0 {
		fmt.Printf("latency min/avg/p99:  %.1f / %.1f / %.1f us\n",
			r.Latency.Min().Micros(), r.Latency.Mean().Micros(), r.Latency.Percentile(99).Micros())
	}
	if len(r.LBTrace) > 0 {
		fmt.Printf("final offload frac:   %.2f\n", r.FinalW)
	}
	for i, d := range r.DeviceStats {
		if d.Tasks == 0 {
			continue
		}
		fmt.Printf("device %d: %d tasks, %d pkts (%.0f pkts/task), kernel busy %v, copy busy %v, host busy %v, maxwait %v\n",
			i, d.Tasks, d.Packets, float64(d.Packets)/float64(d.Tasks),
			d.KernelBusy, d.CopyBusy, d.HostBusy, d.MaxQueueWait)
	}
	if *verbose {
		fmt.Println("per-element statistics:")
		names := make([]string, 0, len(r.NodeStats))
		for n := range r.NodeStats {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			st := r.NodeStats[n]
			fmt.Printf("  %-28s processed=%-10d dropped=%-8d splits=%-6d reuses=%d\n",
				n, st.Processed, st.Dropped, st.Splits, st.Reuses)
		}
	}
}

// parseTenants turns "app[=share],app[=share],..." into a tenant list. Each
// tenant runs the built-in app's pipeline with the shared -lb algorithm and
// its own generator stream (seeded per slot so co-tenants' traffic differs).
func parseTenants(list, lbAlg string, size int, seed uint64) ([]core.Tenant, error) {
	var out []core.Tenant
	for i, item := range strings.Split(list, ",") {
		name, shareStr, hasShare := strings.Cut(strings.TrimSpace(item), "=")
		share := 1.0
		if hasShare {
			f, err := strconv.ParseFloat(shareStr, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad share %q", name, shareStr)
			}
			share = f
		}
		cfgText, err := bench.AppConfig(name, lbAlg)
		if err != nil {
			return nil, err
		}
		out = append(out, core.Tenant{
			Name:        name,
			GraphConfig: cfgText,
			Share:       share,
			Generator:   bench.GeneratorFor(name, size, seed+1+uint64(i)),
		})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nba:", err)
	os.Exit(1)
}
