// Command nbaperf measures and gates the repository's performance
// trajectory.
//
// Usage:
//
//	nbaperf measure [-quick] [-seed N] [-parallel N] -o BENCH_2026-08-08.json
//	nbaperf compare [-tol 0.15] baseline.json fresh.json
//
// measure runs the pinned workloads (chaos sweep + figure grid) at
// parallelism 1 and N and writes a schema-versioned snapshot. compare gates
// a fresh snapshot against a baseline: it fails (exit 1) when any row's
// sim-seconds-per-second falls more than the tolerance below the baseline.
// scripts/perf_gate.sh wires the two together.
package main

import (
	"flag"
	"fmt"
	"os"

	"nba/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "measure":
		measure(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  nbaperf measure [-quick] [-seed N] [-parallel N] -o FILE
  nbaperf compare [-tol 0.15] BASELINE FRESH`)
	os.Exit(2)
}

func measure(args []string) {
	fs := flag.NewFlagSet("nbaperf measure", flag.ExitOnError)
	var (
		quick    = fs.Bool("quick", false, "shrink the workloads (the gate's mode)")
		seed     = fs.Uint64("seed", 42, "workload seed")
		parallel = fs.Int("parallel", 0, "parallel arm worker count (0 = max(2, GOMAXPROCS))")
		out      = fs.String("o", "", "output snapshot path (default: stdout only)")
	)
	fs.Parse(args)

	snap, err := perf.Measure(perf.MeasureOptions{Seed: *seed, Quick: *quick, Parallelism: *parallel})
	if err != nil {
		fatal(err)
	}
	snap.Print(os.Stdout)
	if *out != "" {
		if err := snap.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

func compare(args []string) {
	fs := flag.NewFlagSet("nbaperf compare", flag.ExitOnError)
	tol := fs.Float64("tol", 0.15, "allowed fractional sim-s/s regression")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	base, err := perf.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fresh, err := perf.ReadFile(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	cmp, err := perf.Compare(base, fresh, *tol)
	if err != nil {
		fatal(err)
	}
	for _, l := range cmp.Lines {
		fmt.Println(l)
	}
	if !cmp.OK() {
		fmt.Printf("perf gate: FAIL (%d regression(s), %d missing row(s))\n", cmp.Regressions, cmp.Missing)
		os.Exit(1)
	}
	fmt.Println("perf gate: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbaperf:", err)
	os.Exit(1)
}
